"""Tests for the AMIS proposal step and the concentrate-explore schedule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.breed.amis import AMISConfig, AdaptiveImportanceSampler
from repro.breed.mixing import MixingSchedule
from repro.sampling.bounds import HEAT2D_BOUNDS, ParameterBounds


class TestAMISConfig:
    def test_defaults(self):
        config = AMISConfig()
        assert config.sigma == 10.0
        assert config.sigma_decrement == pytest.approx(0.3)
        assert config.max_retries == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            AMISConfig(sigma=0.0)
        with pytest.raises(ValueError):
            AMISConfig(sigma_decrement=-1.0)
        with pytest.raises(ValueError):
            AMISConfig(max_retries=-1)
        with pytest.raises(ValueError):
            AMISConfig(min_sigma=0.0)


class TestMixingSchedule:
    def test_linear_then_constant(self):
        schedule = MixingSchedule(r_start=0.1, r_end=0.7, breakpoint=3)
        assert schedule.concentrate_probability(0) == pytest.approx(0.1)
        assert schedule.concentrate_probability(3) == pytest.approx(0.7)
        assert schedule.concentrate_probability(100) == pytest.approx(0.7)

    def test_intermediate_value(self):
        schedule = MixingSchedule(r_start=0.0, r_end=1.0, breakpoint=4)
        assert schedule.concentrate_probability(2) == pytest.approx(0.5)

    def test_decreasing_schedule_supported(self):
        schedule = MixingSchedule(r_start=1.0, r_end=0.7, breakpoint=3)
        assert schedule.concentrate_probability(0) == pytest.approx(1.0)
        assert schedule.concentrate_probability(10) == pytest.approx(0.7)

    def test_explore_is_complement(self):
        schedule = MixingSchedule(0.5, 0.9, 2)
        for s in range(5):
            assert schedule.concentrate_probability(s) + schedule.explore_probability(s) == pytest.approx(1.0)

    def test_schedule_list(self):
        assert len(MixingSchedule().schedule(5)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MixingSchedule(r_start=-0.1)
        with pytest.raises(ValueError):
            MixingSchedule(r_end=1.5)
        with pytest.raises(ValueError):
            MixingSchedule(breakpoint=0)
        with pytest.raises(ValueError):
            MixingSchedule().concentrate_probability(-1)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_bounded(self, rs, re, rc, s):
        value = MixingSchedule(rs, re, rc).concentrate_probability(s)
        assert 0.0 <= value <= 1.0
        assert min(rs, re) - 1e-12 <= value <= max(rs, re) + 1e-12


class TestAdaptiveImportanceSampler:
    @pytest.fixture
    def sampler(self):
        return AdaptiveImportanceSampler(HEAT2D_BOUNDS, AMISConfig(sigma=20.0))

    @pytest.fixture
    def window(self, rng):
        locations = rng.uniform(100.0, 500.0, size=(12, 5))
        q_values = rng.random(12)
        return locations, q_values

    def test_samples_within_bounds(self, sampler, window, rng):
        locations, q_values = window
        result = sampler.propose(locations, q_values, 40, concentrate_probability=0.7, rng=rng)
        assert result.samples.shape == (40, 5)
        assert HEAT2D_BOUNDS.contains_all(result.samples)

    def test_weights_normalised(self, sampler, window, rng):
        locations, q_values = window
        result = sampler.propose(locations, q_values, 10, 1.0, rng)
        assert result.weights.sum() == pytest.approx(1.0)
        assert 1.0 <= result.ess <= len(q_values) + 1e-9

    def test_zero_concentrate_gives_all_uniform(self, sampler, window, rng):
        locations, q_values = window
        result = sampler.propose(locations, q_values, 30, concentrate_probability=0.0, rng=rng)
        assert result.n_uniform == 30
        assert result.n_proposal == 0

    def test_full_concentrate_gives_no_uniform(self, sampler, window, rng):
        locations, q_values = window
        result = sampler.propose(locations, q_values, 30, concentrate_probability=1.0, rng=rng)
        assert result.n_uniform == 0

    def test_proposal_samples_cluster_near_high_q_location(self, rng):
        bounds = HEAT2D_BOUNDS
        sampler = AdaptiveImportanceSampler(bounds, AMISConfig(sigma=5.0))
        locations = np.vstack([np.full(5, 150.0), np.full(5, 450.0)])
        q_values = np.array([0.0, 10.0])  # all the mass on the second location
        result = sampler.propose(locations, q_values, 50, 1.0, rng)
        # Every resampled index should be 1, and samples should sit near 450 K.
        assert np.all(result.resampled_indices == 1)
        assert np.abs(result.samples - 450.0).mean() < 20.0

    def test_zero_q_values_degrade_to_uniform_weights(self, sampler, rng):
        locations = rng.uniform(100, 500, size=(8, 5))
        result = sampler.propose(locations, np.zeros(8), 16, 1.0, rng)
        np.testing.assert_allclose(result.weights, 1.0 / 8)

    def test_empty_window_falls_back_to_uniform(self, sampler, rng):
        result = sampler.propose(np.empty((0, 5)), np.empty(0), 12, 0.9, rng)
        assert result.n_samples == 12
        assert result.from_uniform.all()
        assert HEAT2D_BOUNDS.contains_all(result.samples)

    def test_zero_samples(self, sampler, window, rng):
        locations, q_values = window
        result = sampler.propose(locations, q_values, 0, 0.5, rng)
        assert result.n_samples == 0

    def test_sigma_shrinking_near_boundary(self, rng):
        # Locations hugging the corner force out-of-bounds draws and retries.
        bounds = ParameterBounds(low=(0.0, 0.0), high=(1.0, 1.0))
        sampler = AdaptiveImportanceSampler(bounds, AMISConfig(sigma=5.0, sigma_decrement=1.0))
        locations = np.array([[0.01, 0.01]])
        result = sampler.propose(locations, np.array([1.0]), 30, 1.0, rng)
        assert bounds.contains_all(result.samples)
        # Some members must have shrunk their sigma below the initial value.
        assert np.any(result.member_sigmas < 5.0)

    def test_fallback_to_location_when_retries_exhausted(self, rng):
        # sigma_decrement=0 keeps sigma huge, so retries cannot help and the
        # sampler must fall back to the member's location itself.
        bounds = ParameterBounds(low=(0.0, 0.0), high=(1e-3, 1e-3))
        sampler = AdaptiveImportanceSampler(bounds, AMISConfig(sigma=100.0, sigma_decrement=0.0))
        locations = np.array([[5e-4, 5e-4]])
        result = sampler.propose(locations, np.array([1.0]), 10, 1.0, rng)
        assert result.n_fallbacks > 0
        assert bounds.contains_all(result.samples)

    def test_input_validation(self, sampler, window, rng):
        locations, q_values = window
        with pytest.raises(ValueError):
            sampler.propose(locations, q_values[:-1], 4, 0.5, rng)
        with pytest.raises(ValueError):
            sampler.propose(locations, q_values, 4, 1.5, rng)
        with pytest.raises(ValueError):
            sampler.propose(locations, q_values, -1, 0.5, rng)
        with pytest.raises(ValueError):
            sampler.propose(locations[:, :3], q_values, 4, 0.5, rng)
        with pytest.raises(ValueError):
            sampler.propose(locations, -q_values - 1.0, 4, 0.5, rng)

    def test_proposal_mixture_exposed(self, sampler, window, rng):
        locations, q_values = window
        result = sampler.propose(locations, q_values, 6, 1.0, rng)
        assert result.proposal is not None
        assert len(result.proposal) == 6
        assert result.proposal.dim == 5

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=30),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_all_samples_in_bounds(self, n_window, n_samples, concentrate):
        rng = np.random.default_rng(n_window * 100 + n_samples)
        sampler = AdaptiveImportanceSampler(HEAT2D_BOUNDS, AMISConfig(sigma=50.0))
        locations = rng.uniform(100, 500, size=(n_window, 5))
        q_values = rng.random(n_window)
        result = sampler.propose(locations, q_values, n_samples, concentrate, rng)
        assert result.samples.shape == (n_samples, 5)
        assert HEAT2D_BOUNDS.contains_all(result.samples)
        assert result.from_uniform.shape == (n_samples,)
