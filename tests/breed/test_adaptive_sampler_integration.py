"""Integration of the adaptive trigger with the Breed sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.breed.adaptive import AdaptiveTrigger, PeriodicTrigger
from repro.breed.samplers import BreedConfig, BreedSampler
from repro.sampling.bounds import HEAT2D_BOUNDS


def feed(sampler, iteration, n=8):
    rng = np.random.default_rng(iteration)
    sampler.observe_batch(
        iteration=iteration,
        simulation_ids=list(range(n)),
        timesteps=[0] * n,
        sample_losses=rng.random(n).tolist(),
        parameters=[rng.uniform(100, 500, 5) for _ in range(n)],
    )


class TestBreedSamplerWithTriggers:
    def test_periodic_trigger_matches_builtin_behaviour(self, rng):
        config = BreedConfig(period=10, window=30)
        builtin = BreedSampler(HEAT2D_BOUNDS, config)
        injected = BreedSampler(HEAT2D_BOUNDS, config, trigger=PeriodicTrigger(period=10))
        for sampler in (builtin, injected):
            sampler.initial_parameters(20, rng)
            feed(sampler, 1)
        for iteration in range(1, 31):
            assert builtin.should_resample(iteration) == injected.should_resample(iteration)

    def test_adaptive_trigger_fires_and_notifies(self, rng):
        trigger = AdaptiveTrigger(min_interval=5, max_interval=100, ess_fraction=0.05)
        sampler = BreedSampler(HEAT2D_BOUNDS, BreedConfig(period=999, window=30), trigger=trigger)
        sampler.initial_parameters(20, rng)
        feed(sampler, 1)
        # The built-in period (999) would never fire; the adaptive trigger does.
        assert sampler.should_resample(10)
        decision = sampler.resample(4, 10, rng)
        assert decision is not None
        # Cool-down after firing.
        feed(sampler, 11)
        assert not sampler.should_resample(12)
        assert sampler.should_resample(20)

    def test_adaptive_trigger_blocked_without_observations(self, rng):
        trigger = AdaptiveTrigger(min_interval=1, max_interval=10, ess_fraction=0.1)
        sampler = BreedSampler(HEAT2D_BOUNDS, BreedConfig(period=999), trigger=trigger)
        sampler.initial_parameters(10, rng)
        assert not sampler.should_resample(50)  # no losses observed yet

    def test_degenerate_q_landscape_defers_until_max_interval(self, rng):
        trigger = AdaptiveTrigger(min_interval=2, max_interval=40, ess_fraction=0.99)
        sampler = BreedSampler(HEAT2D_BOUNDS, BreedConfig(period=999, window=30), trigger=trigger)
        sampler.initial_parameters(20, rng)
        # One sample far above the batch mean -> a single dominant Q value.
        sampler.observe_batch(
            iteration=1,
            simulation_ids=[0, 1, 2, 3],
            timesteps=[0, 0, 0, 0],
            sample_losses=[10.0, 0.1, 0.1, 0.1],
            parameters=[np.full(5, 200.0)] * 4,
        )
        assert not sampler.should_resample(10)
        assert sampler.should_resample(40)
