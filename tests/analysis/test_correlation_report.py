"""Tests for the Figure-6 correlation analysis and the text report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import (
    CORRELATION_COLUMNS,
    correlation_matrix,
    pearson_correlation,
)
from repro.analysis.curves import curve_from_history
from repro.analysis.deviation import compare_runs
from repro.analysis.report import (
    format_table,
    render_correlation,
    render_histograms,
    render_loss_curves,
    render_metrics,
)
from repro.melissa.server import SampleStatistic, TrainingHistory


class TestPearson:
    def test_perfect_correlation(self, rng):
        x = rng.normal(size=100)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        assert abs(pearson_correlation(rng.normal(size=5000), rng.normal(size=5000))) < 0.1

    def test_constant_input_gives_zero(self, rng):
        assert pearson_correlation(np.ones(10), rng.normal(size=10)) == 0.0

    def test_short_input(self):
        assert pearson_correlation(np.array([1.0]), np.array([2.0])) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.zeros(3), np.zeros(4))


def synthetic_statistics(n=500, seed=0):
    """Statistics rows with the qualitative structure of a training run."""
    rng = np.random.default_rng(seed)
    stats = []
    for i in range(n):
        iteration = i + 1
        batch_loss = 1.0 / (1.0 + 0.01 * iteration)           # decreasing with iteration
        sample_loss = batch_loss * (1.0 + 0.5 * rng.random())
        deviation = max(sample_loss - batch_loss, 0.0) / (0.2 * batch_loss + 1e-9)
        stats.append(
            SampleStatistic(
                iteration=iteration,
                simulation_id=int(rng.integers(0, 50)),
                timestep=int(rng.integers(0, 20)),
                sample_loss=sample_loss,
                uniform=bool(rng.random() < 0.5),
                batch_loss=batch_loss,
                deviation=deviation,
            )
        )
    return stats


class TestCorrelationMatrix:
    def test_shape_and_symmetry(self):
        matrix = correlation_matrix(synthetic_statistics())
        n = len(CORRELATION_COLUMNS)
        assert matrix.matrix.shape == (n, n)
        np.testing.assert_allclose(matrix.matrix, matrix.matrix.T)
        np.testing.assert_allclose(np.diag(matrix.matrix), 1.0)

    def test_values_bounded(self):
        matrix = correlation_matrix(synthetic_statistics())
        assert np.all(matrix.matrix <= 1.0 + 1e-12) and np.all(matrix.matrix >= -1.0 - 1e-12)

    def test_key_findings_structure(self):
        findings = correlation_matrix(synthetic_statistics()).key_findings()
        assert set(findings) == {
            "deviation_vs_iteration",
            "deviation_vs_sample_loss",
            "batch_loss_vs_iteration",
            "sample_loss_vs_iteration",
        }

    def test_expected_signs_on_synthetic_data(self):
        findings = correlation_matrix(synthetic_statistics()).key_findings()
        assert findings["batch_loss_vs_iteration"] < 0.0
        assert findings["deviation_vs_sample_loss"] > 0.0

    def test_value_accessor(self):
        matrix = correlation_matrix(synthetic_statistics())
        assert matrix.value("iteration", "iteration") == pytest.approx(1.0)

    def test_empty_statistics_rejected(self):
        with pytest.raises(ValueError):
            correlation_matrix([])

    def test_render_contains_all_rows(self):
        text = correlation_matrix(synthetic_statistics()).render()
        for column in CORRELATION_COLUMNS:
            assert column in text

    def test_rows_export(self):
        rows = correlation_matrix(synthetic_statistics()).rows()
        assert len(rows) == len(CORRELATION_COLUMNS)


class TestReportRendering:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.34567], ["x", 0.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.3457" in text

    def test_render_loss_curves(self):
        history = TrainingHistory()
        history.train_iterations = list(range(1, 51))
        history.train_losses = list(np.linspace(1, 0.1, 50))
        history.validation_iterations = [25, 50]
        history.validation_losses = [0.5, 0.2]
        curves = {"Breed": curve_from_history(history, "Breed")}
        text = render_loss_curves(curves)
        assert "== Breed ==" in text
        assert "validation" in text
        assert "final:" in text

    def test_render_histograms(self, rng):
        histograms = compare_runs({"Random": rng.uniform(100, 500, (50, 5)),
                                   "Breed": rng.uniform(100, 500, (50, 5))})
        text = render_histograms(histograms)
        assert "Random" in text and "Breed" in text
        assert "mean deviation" in text

    def test_render_correlation(self):
        text = render_correlation(correlation_matrix(synthetic_statistics()))
        assert "key findings" in text
        assert "deviation_vs_sample_loss" in text

    def test_render_metrics(self):
        text = render_metrics({"run-a": {"loss": 0.1}, "run-b": {"loss": 0.2, "gap": 0.05}})
        assert "run-a" in text and "gap" in text
