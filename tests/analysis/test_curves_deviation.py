"""Tests for loss-curve series and parameter-deviation histograms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.curves import LossCurve, curve_from_history, downsample_series, overfit_metrics
from repro.analysis.deviation import (
    compare_runs,
    histogram_by_source,
    parameter_vector_deviation,
)
from repro.breed.samplers import ParameterSource
from repro.melissa.server import TrainingHistory


def make_history(n=100):
    history = TrainingHistory()
    history.train_iterations = list(range(1, n + 1))
    history.train_losses = list(np.linspace(1.0, 0.1, n))
    history.validation_iterations = [25, 50, 75, 100]
    history.validation_losses = [0.9, 0.5, 0.3, 0.2]
    return history


class TestLossCurve:
    def test_curve_from_history(self):
        curve = curve_from_history(make_history(), label="demo", smoothing_window=10)
        assert curve.label == "demo"
        assert curve.train_iterations.shape == (100,)
        assert curve.smoothed_train_losses.shape == (100,)
        assert curve.final_validation_loss == pytest.approx(0.2)
        assert curve.final_train_loss == pytest.approx(curve.smoothed_train_losses[-1])

    def test_overfit_gap_sign(self):
        curve = curve_from_history(make_history(), "x", smoothing_window=10)
        # final validation 0.2 vs 10-iteration smoothed train ≈ 0.14 -> positive gap
        assert curve.overfit_gap > 0

    def test_empty_history(self):
        curve = curve_from_history(TrainingHistory(), "empty")
        assert np.isnan(curve.final_validation_loss)
        assert np.isnan(curve.final_train_loss)

    def test_summary_row_keys(self):
        row = curve_from_history(make_history(), "x").summary_row()
        assert {"final_train_loss", "final_validation_loss", "overfit_gap", "n_iterations"} == set(row)

    def test_overfit_metrics_mapping(self):
        curves = {"a": curve_from_history(make_history(), "a")}
        assert "a" in overfit_metrics(curves)


class TestDownsample:
    def test_fewer_points_than_requested(self):
        pairs = downsample_series([1, 2], [0.1, 0.2], n_points=10)
        assert pairs == [(1.0, 0.1), (2.0, 0.2)]

    def test_downsampling_keeps_endpoints(self):
        iters = list(range(100))
        values = list(np.linspace(1, 0, 100))
        pairs = downsample_series(iters, values, n_points=5)
        assert len(pairs) == 5
        assert pairs[0][0] == 0.0 and pairs[-1][0] == 99.0

    def test_empty(self):
        assert downsample_series([], [], 5) == []


class TestParameterDeviation:
    def test_single_vector(self):
        assert parameter_vector_deviation(np.array([100.0, 100.0, 100.0])) == 0.0

    def test_batch(self):
        devs = parameter_vector_deviation(np.array([[100.0, 100.0], [100.0, 500.0]]))
        assert devs.shape == (2,)
        assert devs[0] == 0.0 and devs[1] == pytest.approx(200.0)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            parameter_vector_deviation(np.zeros((2, 2, 2)))

    def test_uniform_vectors_have_mean_near_theory(self, rng):
        # Std of 5 iid U(100, 500) values has expectation close to ~106 K.
        params = rng.uniform(100, 500, size=(4000, 5))
        assert 90.0 < parameter_vector_deviation(params).mean() < 120.0


class TestHistograms:
    def test_histogram_by_source_split(self, rng):
        params = rng.uniform(100, 500, size=(40, 5))
        sources = [ParameterSource.INITIAL_UNIFORM] * 10 + [ParameterSource.MIX_UNIFORM] * 10 + [
            ParameterSource.PROPOSAL
        ] * 20
        histograms = histogram_by_source(params, sources, n_bins=8)
        assert histograms["Uniform"].n == 20
        assert histograms["Proposal"].n == 20
        assert histograms["Uniform"].counts.sum() == 20
        # Shared bin edges across the two histograms.
        np.testing.assert_array_equal(histograms["Uniform"].bin_edges, histograms["Proposal"].bin_edges)

    def test_histogram_source_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            histogram_by_source(rng.random((3, 5)), ["proposal"] * 2)

    def test_compare_runs_detects_shift(self, rng):
        # "Breed" synthetic run: higher intra-vector spread than "Random".
        random_params = rng.uniform(280, 320, size=(100, 5))            # tight spread
        breed_params = rng.choice([100.0, 500.0], size=(100, 5))        # extreme spread
        histograms = compare_runs({"Random": random_params, "Breed": breed_params})
        assert histograms["Breed"].mean > histograms["Random"].mean
        assert histograms["Random"].n == histograms["Breed"].n == 100

    def test_histogram_rows_cover_all_counts(self, rng):
        histograms = compare_runs({"A": rng.uniform(100, 500, size=(30, 5))}, n_bins=6)
        rows = histograms["A"].as_rows()
        assert len(rows) == 6
        assert sum(count for _, _, count in rows) == 30

    def test_empty_group_handled(self, rng):
        params = rng.uniform(100, 500, size=(5, 5))
        sources = [ParameterSource.INITIAL_UNIFORM] * 5
        histograms = histogram_by_source(params, sources)
        assert histograms["Proposal"].n == 0
        assert np.isnan(histograms["Proposal"].mean)
