"""Fixtures for the checkpoint-subsystem tests: tiny parametrizable runs."""

from __future__ import annotations

from typing import Callable

import pytest

from repro.breed.samplers import BreedConfig
from repro.melissa.run import OnlineTrainingConfig
from repro.solvers.heat2d import Heat2DConfig


@pytest.fixture
def make_config() -> Callable[..., OnlineTrainingConfig]:
    """Factory of sub-second training configurations, workload/method selectable."""

    def factory(
        workload: str = "heat2d",
        method: str = "breed",
        seed: int = 5,
        **overrides,
    ) -> OnlineTrainingConfig:
        kwargs = dict(
            method=method,
            workload=workload,
            heat=Heat2DConfig(grid_size=6, n_timesteps=5),
            breed=BreedConfig(
                sigma=25.0, period=10, window=30, r_start=0.5, r_end=0.7, r_breakpoint=2
            ),
            n_simulations=24,
            hidden_size=8,
            n_hidden_layers=1,
            batch_size=16,
            job_limit=4,
            timesteps_per_tick=1,
            train_iterations_per_tick=2,
            reservoir_capacity=120,
            reservoir_watermark=24,
            max_iterations=60,
            validation_period=20,
            n_validation_trajectories=3,
            seed=seed,
        )
        kwargs.update(overrides)
        return OnlineTrainingConfig(**kwargs)

    return factory
