"""Component-level ``state_dict``/``load_state_dict`` round-trips.

Every stateful component of the training loop must restore to a state that
*behaves* bit-identically — the assertions therefore compare behaviour after
the round-trip (next random draw, next batch, next scheduler tick), not just
stored attributes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.breed.acquisition import LossDeviationTracker, SampleLossObservation
from repro.breed.controller import BreedController
from repro.breed.samplers import BreedSampler, RandomSampler
from repro.melissa.client import ClientFactory
from repro.melissa.reservoir import Reservoir
from repro.melissa.scheduler import BatchScheduler, JobState
from repro.melissa.transport import InProcessTransport
from repro.melissa.messages import TimeStepMessage
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.utils.rng import RngStreams


class TestRngStreams:
    def test_roundtrip_continues_identically(self):
        streams = RngStreams(seed=42)
        a = streams.get("alpha")
        b = streams.get("beta")
        a.random(10), b.random(3)  # advance both
        state = streams.state_dict()
        expected = (a.random(5).tolist(), b.random(5).tolist())

        fresh = RngStreams(seed=42)
        fresh.get("alpha").random(99)  # arbitrary position before restore
        fresh.load_state_dict(state)
        restored = (fresh.get("alpha").random(5).tolist(), fresh.get("beta").random(5).tolist())
        assert restored == expected

    def test_restore_is_in_place_for_aliased_holders(self):
        streams = RngStreams(seed=1)
        generator = streams.get("shared")  # e.g. held by the reservoir
        state = streams.state_dict()
        expected = generator.random(4).tolist()
        generator.random(100)  # drift away
        streams.load_state_dict(state)
        # The *same object* must continue from the restored state.
        assert generator.random(4).tolist() == expected

    def test_seed_mismatch_rejected(self):
        state = RngStreams(seed=1).state_dict()
        with pytest.raises(ValueError, match="root seed"):
            RngStreams(seed=2).load_state_dict(state)

    def test_state_is_json_compatible(self):
        import json

        streams = RngStreams(seed=3)
        streams.get("x").random(7)
        state = json.loads(json.dumps(streams.state_dict()))
        fresh = RngStreams(seed=3)
        fresh.load_state_dict(state)
        assert fresh.get("x").random() == streams.get("x").random()


class TestReservoir:
    def _filled(self, seed: int = 0) -> Reservoir:
        rng = np.random.default_rng(seed)
        reservoir = Reservoir(capacity=20, watermark=5, rng=rng)
        for i in range(30):
            reservoir.put(i % 7, i, rng.random(4), rng.random(9))
            if i % 3 == 0 and reservoir.ready_for_training:
                reservoir.sample_batch(4)
        return reservoir

    def test_roundtrip_preserves_content_and_behaviour(self):
        source = self._filled()
        state = source.state_dict()
        # Behaviour reference: next batches drawn from the source.
        rng_state = source._rng.bit_generator.state
        expected = [source.sample_batch(6).simulation_ids.tolist() for _ in range(3)]

        rng = np.random.default_rng(0)
        target = Reservoir(capacity=20, watermark=5, rng=rng)
        rng.bit_generator.state = rng_state
        target.load_state_dict(state)
        assert len(target) == int(state["n_entries"])
        assert target.n_received == source.n_received
        assert target.n_rejected == source.n_rejected
        assert target.n_evicted == source.n_evicted
        got = [target.sample_batch(6).simulation_ids.tolist() for _ in range(3)]
        assert got == expected

    def test_geometry_mismatch_rejected(self):
        state = self._filled().state_dict()
        other = Reservoir(capacity=10, watermark=5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="geometry"):
            other.load_state_dict(state)

    def test_empty_reservoir_roundtrip(self):
        empty = Reservoir(capacity=8, watermark=2, rng=np.random.default_rng(0))
        target = Reservoir(capacity=8, watermark=2, rng=np.random.default_rng(1))
        target.load_state_dict(empty.state_dict())
        assert len(target) == 0 and not target.ready_for_training


class TestScheduler:
    def test_roundtrip_preserves_jobs_and_tick(self):
        rng = np.random.default_rng(7)
        scheduler = BatchScheduler(job_limit=3, rng=rng, max_start_delay=2)
        for job_id in range(5):
            scheduler.submit(job_id)
        scheduler.advance()
        started = scheduler.jobs_in_state(JobState.RUNNING)
        if started:
            scheduler.complete(started[0])
        state = scheduler.state_dict()
        rng_state = rng.bit_generator.state
        summary_at_save = scheduler.summary()
        expected = [scheduler.advance() for _ in range(3)]

        rng2 = np.random.default_rng(7)
        restored = BatchScheduler(job_limit=3, rng=rng2, max_start_delay=2)
        rng2.bit_generator.state = rng_state
        restored.load_state_dict(state)
        assert restored.tick_count == int(state["tick"])
        assert restored.summary() == summary_at_save
        assert [restored.advance() for _ in range(3)] == expected

    def test_job_limit_mismatch_rejected(self):
        scheduler = BatchScheduler(job_limit=3, rng=np.random.default_rng(0))
        other = BatchScheduler(job_limit=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="job_limit"):
            other.load_state_dict(scheduler.state_dict())


class TestClient:
    def test_fast_forward_resumes_mid_trajectory(self, tiny_solver):
        factory = ClientFactory(solver=tiny_solver)
        params = np.array([150.0, 200.0, 250.0, 300.0, 350.0])
        original = factory.create(0, params)
        first = original.produce(3)
        state = original.state_dict()
        expected = [m.payload.tolist() for m in original.produce(2)]

        resumed = factory.create(0, params)
        resumed.load_state_dict(state)
        assert resumed.n_produced == 3
        got = resumed.produce(2)
        assert [m.timestep for m in got] == [3, 4]
        assert [m.payload.tolist() for m in got] == expected
        assert first[0].timestep == 0

    def test_finished_client_stays_finished(self, tiny_solver):
        factory = ClientFactory(solver=tiny_solver)
        params = np.array([150.0, 200.0, 250.0, 300.0, 350.0])
        client = factory.create(1, params)
        while not client.finished:
            client.produce(10)
        resumed = factory.create(1, params)
        resumed.load_state_dict(client.state_dict())
        assert resumed.finished
        assert resumed.produce(5) == []

    def test_simulation_id_mismatch_rejected(self, tiny_solver):
        factory = ClientFactory(solver=tiny_solver)
        params = np.array([150.0, 200.0, 250.0, 300.0, 350.0])
        state = factory.create(1, params).state_dict()
        with pytest.raises(ValueError, match="simulation 1"):
            factory.create(2, params).load_state_dict(state)


class TestTracker:
    def _observed(self) -> LossDeviationTracker:
        tracker = LossDeviationTracker()
        rng = np.random.default_rng(0)
        for sim_id in range(6):
            tracker.register_parameters(sim_id, rng.random(5))
        for iteration in range(1, 8):
            for sim_id in (iteration % 6, (iteration + 2) % 6):
                tracker.observe(
                    SampleLossObservation(
                        simulation_id=sim_id,
                        timestep=iteration % 3,
                        iteration=iteration,
                        sample_loss=float(rng.random()),
                        batch_mean=0.4,
                        batch_std=0.2,
                    )
                )
        return tracker

    def test_roundtrip_preserves_window_and_q_values(self):
        source = self._observed()
        target = LossDeviationTracker()
        target.load_state_dict(source.state_dict())
        assert target.n_observations == source.n_observations
        assert target.all_q_values() == source.all_q_values()
        src_locations, src_q, src_ids = source.window(4)
        dst_locations, dst_q, dst_ids = target.window(4)
        assert src_ids == dst_ids
        np.testing.assert_array_equal(src_locations, dst_locations)
        np.testing.assert_array_equal(src_q, dst_q)

    def test_per_timestep_order_preserved(self):
        # q_value averages per-timestep means in insertion order; the restore
        # must keep that order for bit-identical floating-point sums.
        source = self._observed()
        target = LossDeviationTracker()
        target.load_state_dict(source.state_dict())
        for sid, record in source._records.items():
            assert list(target._records[sid].per_timestep) == list(record.per_timestep)


class TestSamplers:
    def test_random_sampler_state_is_empty(self):
        sampler = RandomSampler(HEAT2D_BOUNDS)
        assert sampler.state_dict() == {}
        sampler.load_state_dict({})  # no-op

    def test_breed_sampler_roundtrip_same_next_decision(self):
        rng = np.random.default_rng(3)
        source = BreedSampler(HEAT2D_BOUNDS)
        params = source.initial_parameters(12, rng)
        for iteration in range(1, 5):
            source.observe_batch(
                iteration, [0, 1, 2], [0, 1, 2], [0.5, 0.9, 0.1], parameters=params[:3]
            )
        state = source.state_dict()
        rng_state = rng.bit_generator.state
        expected = source.resample(4, iteration=10, rng=rng)

        target = BreedSampler(HEAT2D_BOUNDS)
        target.load_state_dict(state)
        rng2 = np.random.default_rng(3)
        rng2.bit_generator.state = rng_state
        got = target.resample(4, iteration=10, rng=rng2)
        np.testing.assert_array_equal(got.parameters, expected.parameters)
        assert got.sources == expected.sources
        assert got.resampling_index == expected.resampling_index

    def test_breed_decisions_survive_roundtrip(self):
        rng = np.random.default_rng(3)
        source = BreedSampler(HEAT2D_BOUNDS)
        params = source.initial_parameters(8, rng)
        source.observe_batch(1, [0], [0], [0.7], parameters=params[:1])
        source.resample(2, iteration=5, rng=rng)
        target = BreedSampler(HEAT2D_BOUNDS)
        target.load_state_dict(source.state_dict())
        assert len(target.decisions) == 1
        np.testing.assert_array_equal(target.decisions[0].parameters, source.decisions[0].parameters)
        assert target.resampling_count == source.resampling_count


class TestTriggers:
    def test_adaptive_trigger_state_roundtrip(self):
        from repro.breed.adaptive import AdaptiveTrigger

        source = AdaptiveTrigger(min_interval=10, max_interval=50, ess_fraction=0.4)
        q = np.array([0.2, 0.9, 0.4])
        source.should_fire(20, q)
        source.notify_fired(20)
        target = AdaptiveTrigger(min_interval=10, max_interval=50, ess_fraction=0.4)
        target.load_state_dict(source.state_dict())
        assert target._last_fired == 20
        assert target.history == source.history
        # the cool-down anchor governs behaviour: within min_interval → no fire
        assert not target.should_fire(25, q)
        # past max_interval since the restored firing → always fires
        assert target.should_fire(71, q)

    def test_breed_sampler_carries_trigger_state(self):
        from repro.breed.adaptive import AdaptiveTrigger

        rng = np.random.default_rng(5)
        source = BreedSampler(
            HEAT2D_BOUNDS, trigger=AdaptiveTrigger(min_interval=5, max_interval=30)
        )
        params = source.initial_parameters(8, rng)
        source.observe_batch(1, [0, 1], [0, 0], [0.3, 0.8], parameters=params[:2])
        assert source.should_resample(31)  # max_interval elapsed
        source.resample(2, iteration=31, rng=rng)
        source.trigger.notify_fired(31)

        target = BreedSampler(
            HEAT2D_BOUNDS, trigger=AdaptiveTrigger(min_interval=5, max_interval=30)
        )
        target.load_state_dict(source.state_dict())
        assert target.trigger._last_fired == 31
        # without the restored anchor this would fire (31+30 elapsed from 0)
        assert not target.should_resample(33)

    def test_periodic_trigger_state_roundtrip(self):
        from repro.breed.adaptive import PeriodicTrigger

        source = PeriodicTrigger(period=10)
        source.notify_fired(30)
        target = PeriodicTrigger(period=10)
        target.load_state_dict(source.state_dict())
        assert target._last_fired == 30


class TestControllerAndTransport:
    def test_controller_records_roundtrip(self):
        rng = np.random.default_rng(0)
        source = BreedController(sampler=RandomSampler(HEAT2D_BOUNDS), rng=rng)
        source.steering_timer.total = 1.25
        source.steering_timer.count = 3
        state = source.state_dict()
        target = BreedController(
            sampler=RandomSampler(HEAT2D_BOUNDS), rng=np.random.default_rng(0)
        )
        target.load_state_dict(state)
        assert target.total_steering_seconds == 1.25
        assert target.records == []

    def test_transport_stats_roundtrip(self):
        transport = InProcessTransport()
        message = TimeStepMessage(simulation_id=1, parameters=np.ones(5), timestep=0, payload=np.ones(16))
        for _ in range(7):
            transport.account(message)
        target = InProcessTransport()
        target.load_state_dict(transport.state_dict())
        assert target.total_bytes() == transport.total_bytes()
        assert target.total_messages() == 7
        assert target.total_dropped() == 0
