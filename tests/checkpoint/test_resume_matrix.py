"""The headline guarantee: kill-and-resume is *bit-identical*.

A run interrupted at an arbitrary tick and restored from its snapshot must
reproduce the uninterrupted run's metrics and series bit-for-bit, across
every registered workload — the heat family (heat2d / heat1d / analytic) and
the multi-physics family (advection1d / advection2d / burgers / fisher) —
and steering samplers (breed / random).  Wall-clock quantities (steering
seconds) are measurement, not state, and are the only exclusion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import OnlineTrainingResult, TrainingSession
from repro.checkpoint import CheckpointPolicy, restore_session, resume_or_start, save_session


def _drive_to_completion(session: TrainingSession) -> OnlineTrainingResult:
    while session.n_ticks < session.config.max_ticks:
        if not session.tick():
            break
    return session.result()


def assert_bit_identical(resumed: OnlineTrainingResult, reference: OnlineTrainingResult) -> None:
    assert resumed.history.train_losses == reference.history.train_losses
    assert resumed.history.train_iterations == reference.history.train_iterations
    assert resumed.history.validation_losses == reference.history.validation_losses
    assert resumed.history.validation_iterations == reference.history.validation_iterations
    np.testing.assert_array_equal(resumed.executed_parameters, reference.executed_parameters)
    assert resumed.parameter_sources == reference.parameter_sources
    assert resumed.n_ticks == reference.n_ticks
    assert resumed.method == reference.method
    assert resumed.workload == reference.workload
    assert resumed.transport_bytes == reference.transport_bytes
    assert resumed.transport_dropped == reference.transport_dropped
    assert resumed.launcher_summary == reference.launcher_summary
    assert resumed.reservoir_summary == reference.reservoir_summary
    assert [
        (r.iteration, r.resampling_index, r.simulation_ids, r.sources, r.n_requested, r.n_applied)
        for r in resumed.steering_records
    ] == [
        (r.iteration, r.resampling_index, r.simulation_ids, r.sources, r.n_requested, r.n_applied)
        for r in reference.steering_records
    ]
    # model weights: the final surrogate must be the same network
    for key, value in reference.model.state_dict().items():
        np.testing.assert_array_equal(resumed.model.state_dict()[key], value)


@pytest.mark.parametrize(
    "workload",
    ["heat2d", "heat1d", "analytic", "advection1d", "advection2d", "burgers", "fisher"],
)
@pytest.mark.parametrize("method", ["breed", "random"])
def test_kill_and_resume_matrix(workload, method, make_config, tmp_path):
    config = make_config(workload=workload, method=method, seed=7)
    reference = TrainingSession(config).run()

    killed = TrainingSession(config)
    for _ in range(9):  # die mid-run, well past the watermark
        killed.tick()
    snapshot = save_session(killed, tmp_path)
    del killed

    resumed_session = restore_session(snapshot)
    resumed = _drive_to_completion(resumed_session)
    assert_bit_identical(resumed, reference)


@pytest.mark.parametrize("kill_tick", [1, 5, 14])
def test_arbitrary_kill_points(kill_tick, make_config, tmp_path):
    config = make_config(workload="heat2d", method="breed", seed=3)
    reference = TrainingSession(config).run()

    killed = TrainingSession(config)
    for _ in range(kill_tick):
        if not killed.tick():
            break
    snapshot = save_session(killed, tmp_path)
    resumed = _drive_to_completion(restore_session(snapshot))
    assert_bit_identical(resumed, reference)


def test_double_interruption(make_config, tmp_path):
    """Two successive crashes: snapshot → resume → snapshot → resume."""
    config = make_config(seed=11)
    reference = TrainingSession(config).run()

    first = TrainingSession(config)
    for _ in range(4):
        first.tick()
    resumed_once = restore_session(save_session(first, tmp_path / "a"))
    for _ in range(5):
        resumed_once.tick()
    resumed_twice = restore_session(save_session(resumed_once, tmp_path / "b"))
    assert_bit_identical(_drive_to_completion(resumed_twice), reference)


def test_policy_driven_crash_resume(make_config, tmp_path):
    """End-to-end through the periodic policy and ``resume_or_start``."""
    config = make_config(seed=13, checkpoint_dir=str(tmp_path), checkpoint_every=8)
    reference = TrainingSession(make_config(seed=13)).run()

    class SimulatedCrash(RuntimeError):
        pass

    session = TrainingSession(config)
    policy = CheckpointPolicy(directory=tmp_path, every_n_batches=8).attach(session)

    def crash(s: TrainingSession) -> None:
        if s.server.iteration >= 30:
            raise SimulatedCrash

    session.on_tick.append(crash)
    with pytest.raises(SimulatedCrash):
        session.run()
    assert policy.n_saved >= 1
    del session

    resumed_session = resume_or_start(config)
    assert 0 < resumed_session.server.iteration < config.max_iterations
    resumed = _drive_to_completion(resumed_session)
    assert_bit_identical(resumed, reference)


def test_restore_at_final_tick_adds_no_extra_tick(make_config, tmp_path):
    """A snapshot taken at the run's terminal tick resumes to the same end."""
    config = make_config(seed=19)
    reference = TrainingSession(config).run()

    finished = TrainingSession(config)
    while finished.tick():
        pass
    assert finished.n_ticks == reference.n_ticks
    snapshot = save_session(finished, tmp_path)
    resumed_session = restore_session(snapshot)
    resumed = resumed_session.run()  # must terminate without another tick
    assert_bit_identical(resumed, reference)


def test_sample_statistics_survive_resume(make_config, tmp_path):
    """record_sample_statistics=True (the Fig. 6 payload) also resumes exactly."""
    config = make_config(seed=17, record_sample_statistics=True)
    reference = TrainingSession(config).run()

    killed = TrainingSession(config)
    for _ in range(7):
        killed.tick()
    resumed = _drive_to_completion(restore_session(save_session(killed, tmp_path)))
    assert_bit_identical(resumed, reference)
    assert [
        (s.iteration, s.simulation_id, s.timestep, s.sample_loss, s.uniform, s.batch_loss, s.deviation)
        for s in resumed.history.sample_statistics
    ] == [
        (s.iteration, s.simulation_id, s.timestep, s.sample_loss, s.uniform, s.batch_loss, s.deviation)
        for s in reference.history.sample_statistics
    ]
