"""Process-level fault tolerance: a SIGKILLed run resumes bit-identically.

Unlike the in-process matrix tests, this drives the actual failure mode: a
subprocess training with periodic snapshots is SIGKILLed mid-run (no cleanup,
no atexit — the same signal an OOM killer or a preempted node delivers), and
the resumed run must match an uninterrupted reference exactly.  The scenario
is implemented by ``scripts/kill_resume_smoke.py`` so CI can run the same
smoke outside pytest.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # real SIGKILL + full resume in subprocesses

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "kill_resume_smoke.py"


def test_sigkill_and_resume_is_bit_identical(tmp_path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    completed = subprocess.run(
        [sys.executable, str(SCRIPT), "--workdir", str(tmp_path / "smoke")],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "OK: kill-and-resume is bit-identical" in completed.stdout
    # the victim really was SIGKILLed and really left snapshots behind
    assert "SIGKILLed" in completed.stdout
