"""Mid-run resume through the study engine: ``run_all`` re-enters runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import TrainingSession
from repro.checkpoint import latest_snapshot, list_snapshots, save_session
from repro.workflow.executor import RunSpec, TIMING_METRICS, execute_spec
from repro.workflow.study import StudyRunner


CONFIGS = [
    {"_name": "breed8", "method": "breed", "hidden_size": 8},
    {"_name": "rand8", "method": "random", "hidden_size": 8},
]


def _runner(make_config) -> StudyRunner:
    return StudyRunner(base_config=make_config(), study_name="ckpt")


def assert_records_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.name == b.name
        assert a.series == b.series
        for key, value in a.metrics.items():
            if key not in TIMING_METRICS:
                assert b.metrics[key] == value, (a.name, key)


class TestRunSpecCheckpointing:
    def test_spec_checkpoint_fields_reach_the_config(self, make_config, tmp_path):
        spec = RunSpec(
            name="r",
            config=make_config().to_dict(),
            overrides={"method": "random"},
            checkpoint_dir=str(tmp_path),
            checkpoint_every=10,
        )
        config = spec.build_config()
        assert config.checkpoint_dir == str(tmp_path)
        assert config.checkpoint_every == 10
        # plumbing is excluded from the run fingerprint
        bare = RunSpec(name="r", config=make_config().to_dict(), overrides={"method": "random"})
        assert config.digest() == bare.build_config().digest()

    def test_execute_spec_writes_and_reuses_snapshots(self, make_config, tmp_path, caplog):
        spec = RunSpec(
            name="r",
            config=make_config().to_dict(),
            overrides={},
            checkpoint_dir=str(tmp_path / "snaps"),
            checkpoint_every=10,
        )
        reference, _ = execute_spec(RunSpec(name="r", config=make_config().to_dict()))
        # first execution snapshots itself while running
        record, _ = execute_spec(spec)
        assert list_snapshots(tmp_path / "snaps")
        assert record.series == reference.series

        # a partially-run snapshot in the dir is re-entered, not restarted
        partial = TrainingSession(spec.build_config())
        for _ in range(6):
            partial.tick()
        save_session(partial, tmp_path / "snaps")
        with caplog.at_level("INFO", logger="repro.checkpoint"):
            resumed_record, _ = execute_spec(spec)
        assert "resuming session" in caplog.text
        assert resumed_record.series == reference.series


class TestStudyRunnerResume:
    def test_interrupted_study_reenters_partial_runs(self, make_config, tmp_path, caplog):
        jsonl = tmp_path / "study.runs.jsonl"
        reference = _runner(make_config).run_all(CONFIGS, name_key="_name")

        # First invocation "crashed": run 0 completed (checkpointed in the
        # JSONL), run 1 died mid-run leaving only session snapshots behind.
        _runner(make_config).run_all(
            CONFIGS[:1], name_key="_name", checkpoint=jsonl, checkpoint_every=10
        )
        specs = _runner(make_config).build_specs(CONFIGS, name_key="_name")
        snapshot_root = tmp_path / "study.runs.jsonl.snapshots"
        run1_dir = StudyRunner._run_snapshot_dir(snapshot_root, 1, specs[1].name)
        partial = TrainingSession(specs[1].build_config())
        for _ in range(7):
            partial.tick()
        save_session(partial, run1_dir)

        with caplog.at_level("INFO", logger="repro.checkpoint"):
            resumed = _runner(make_config).run_all(
                CONFIGS, name_key="_name", resume=jsonl, checkpoint_every=10
            )
        assert "resuming session" in caplog.text
        assert_records_identical(reference, resumed)

    def test_completed_study_resumes_without_rerunning(self, make_config, tmp_path):
        jsonl = tmp_path / "study.runs.jsonl"
        first = _runner(make_config).run_all(
            CONFIGS, name_key="_name", checkpoint=jsonl, checkpoint_every=10
        )
        content = jsonl.read_text()
        again = _runner(make_config).run_all(
            CONFIGS, name_key="_name", resume=jsonl, checkpoint_every=10
        )
        assert jsonl.read_text() == content  # nothing re-executed or appended
        assert_records_identical(first, again)

    def test_checkpoint_every_needs_an_anchor(self, make_config):
        with pytest.raises(ValueError, match="snapshot"):
            _runner(make_config).run_all(CONFIGS, name_key="_name", checkpoint_every=10)

    def test_explicit_snapshot_dir(self, make_config, tmp_path):
        results = _runner(make_config).run_all(
            CONFIGS[:1],
            name_key="_name",
            checkpoint=tmp_path / "s.jsonl",
            checkpoint_every=10,
            snapshot_dir=tmp_path / "elsewhere",
        )
        assert len(results) == 1
        run_dirs = sorted(p for p in (tmp_path / "elsewhere").iterdir() if p.is_dir())
        assert len(run_dirs) == 1 and run_dirs[0].name.startswith("0000-")
        assert latest_snapshot(run_dirs[0]) is not None

    def test_snapshot_free_study_unchanged(self, make_config, tmp_path):
        # Determinism contract: enabling snapshots must not change results.
        plain = _runner(make_config).run_all(CONFIGS, name_key="_name")
        snapped = _runner(make_config).run_all(
            CONFIGS,
            name_key="_name",
            checkpoint=tmp_path / "s.jsonl",
            checkpoint_every=5,
        )
        assert_records_identical(plain, snapped)

    def test_run_snapshot_dir_is_sanitised_and_stable(self, tmp_path):
        dir_a = StudyRunner._run_snapshot_dir(tmp_path, 3, "fig3b:sigma=2.5/odd name")
        assert dir_a.name == "0003-fig3b_sigma=2.5_odd_name"
        assert StudyRunner._run_snapshot_dir(tmp_path, 3, "fig3b:sigma=2.5/odd name") == dir_a


def test_executed_parameters_identical_after_study_resume(make_config, tmp_path):
    """Full-result path: serial executor keeps models; compare weights too."""
    runner = _runner(make_config)
    reference = runner.run_all(CONFIGS[:1], name_key="_name")
    ref_model = runner.full_results[reference.runs[0].name].model

    jsonl = tmp_path / "one.jsonl"
    specs = runner.build_specs(CONFIGS[:1], name_key="_name")
    run_dir = StudyRunner._run_snapshot_dir(tmp_path / "one.jsonl.snapshots", 0, specs[0].name)
    partial = TrainingSession(specs[0].build_config())
    for _ in range(5):
        partial.tick()
    save_session(partial, run_dir)

    resumed_runner = _runner(make_config)
    resumed = resumed_runner.run_all(
        CONFIGS[:1], name_key="_name", checkpoint=jsonl, checkpoint_every=10
    )
    res_model = resumed_runner.full_results[resumed.runs[0].name].model
    for key, value in ref_model.state_dict().items():
        np.testing.assert_array_equal(res_model.state_dict()[key], value)
