"""The ``SessionSnapshot`` on-disk format: encoding, atomicity, retention."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.session import TrainingSession
from repro.checkpoint import (
    SCHEMA_VERSION,
    CheckpointPolicy,
    SnapshotError,
    SnapshotMismatchError,
    decode_state,
    encode_state,
    latest_snapshot,
    list_snapshots,
    load_manifest,
    restore_session,
    resume_or_start,
    save_session,
)


class TestStateEncoding:
    def test_roundtrip_scalars_arrays_and_nesting(self):
        state = {
            "n": 3,
            "pi": 3.14159,
            "flag": True,
            "nothing": None,
            "name": "run",
            "vector": np.arange(5, dtype=np.float64),
            "nested": {"ints": np.arange(4, dtype=np.int64), "items": [1, "two", None]},
            "list_of_arrays": [np.ones(2), np.zeros((2, 3))],
        }
        encoded, arrays = encode_state(state)
        # the encoded tree must survive a JSON round trip
        encoded = json.loads(json.dumps(encoded))
        decoded = decode_state(encoded, arrays)
        assert decoded["n"] == 3 and decoded["pi"] == 3.14159
        assert decoded["flag"] is True and decoded["nothing"] is None
        np.testing.assert_array_equal(decoded["vector"], state["vector"])
        np.testing.assert_array_equal(decoded["nested"]["ints"], state["nested"]["ints"])
        np.testing.assert_array_equal(decoded["list_of_arrays"][1], np.zeros((2, 3)))

    def test_numpy_scalars_become_python_scalars(self):
        encoded, _ = encode_state({"a": np.int64(7), "b": np.float64(0.5), "c": np.bool_(True)})
        assert encoded == {"a": 7, "b": 0.5, "c": True}
        assert type(encoded["a"]) is int and type(encoded["b"]) is float

    def test_unsupported_type_names_the_path(self):
        with pytest.raises(TypeError, match=r"\$\.outer\.bad"):
            encode_state({"outer": {"bad": object()}})

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError, match="keys must be strings"):
            encode_state({"outer": {3: "x"}})

    def test_reserved_sentinel_key_rejected(self):
        with pytest.raises(TypeError, match="__ndarray__"):
            encode_state({"__ndarray__": "nope"})

    def test_float_bits_survive_json(self):
        value = float(np.nextafter(0.1, 1.0))
        encoded, _ = encode_state({"x": value})
        assert json.loads(json.dumps(encoded))["x"] == value


class TestSnapshotDirectory:
    def _session(self, make_config, **kw) -> TrainingSession:
        session = TrainingSession(make_config(**kw))
        for _ in range(6):
            session.tick()
        return session

    def test_save_creates_manifest_and_arrays(self, make_config, tmp_path):
        session = self._session(make_config)
        path = save_session(session, tmp_path)
        assert path.name == f"step-{session.n_ticks:08d}"
        manifest = load_manifest(path)
        assert manifest["schema"] == SCHEMA_VERSION
        assert manifest["fingerprint"] == session.config.digest()
        assert manifest["n_ticks"] == session.n_ticks
        assert manifest["iteration"] == session.server.iteration
        assert (path / "arrays.npz").exists()

    def test_latest_pointer_and_scan_fallback(self, make_config, tmp_path):
        session = self._session(make_config)
        first = save_session(session, tmp_path)
        session.tick()
        second = save_session(session, tmp_path)
        assert latest_snapshot(tmp_path) == second
        (tmp_path / "latest.json").write_text("not json{")
        assert latest_snapshot(tmp_path) == second  # fallback: directory scan
        assert list_snapshots(tmp_path) == [first, second]

    def test_retention_prunes_oldest(self, make_config, tmp_path):
        session = self._session(make_config)
        for _ in range(4):
            session.tick()
            save_session(session, tmp_path, keep=2)
        snapshots = list_snapshots(tmp_path)
        assert len(snapshots) == 2
        assert latest_snapshot(tmp_path) == snapshots[-1]

    def test_save_is_idempotent_per_tick(self, make_config, tmp_path):
        session = self._session(make_config)
        first = save_session(session, tmp_path)
        again = save_session(session, tmp_path)
        assert first == again
        assert len(list_snapshots(tmp_path)) == 1

    def test_save_replaces_foreign_snapshot_at_same_tick(self, make_config, tmp_path):
        # Stale directory reuse: a leftover step-N dir from a *different*
        # configuration must be replaced, not trusted — otherwise the latest
        # pointer would advertise our fingerprint over a foreign snapshot and
        # every later restore would fail the mismatch check.
        stale = self._session(make_config, seed=1)
        save_session(stale, tmp_path)
        current = self._session(make_config, seed=2)
        assert current.n_ticks == stale.n_ticks  # same step name
        path = save_session(current, tmp_path)
        assert load_manifest(path)["fingerprint"] == current.config.digest()
        restored = restore_session(path, config=current.config)
        assert restored.n_ticks == current.n_ticks

    def test_prune_removes_stale_latest_tmp_files(self, make_config, tmp_path):
        session = self._session(make_config)
        save_session(session, tmp_path)
        orphan = tmp_path / "latest.json.tmp-99999"  # a crashed writer's leftover
        orphan.write_text("{}")
        session.tick()
        save_session(session, tmp_path, keep=2)
        assert not orphan.exists()
        assert (tmp_path / "latest.json").exists()

    def test_no_tmp_dirs_left_behind(self, make_config, tmp_path):
        session = self._session(make_config)
        save_session(session, tmp_path, keep=1)
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_incomplete_snapshot_is_invisible(self, make_config, tmp_path):
        session = self._session(make_config)
        save_session(session, tmp_path)
        # Simulate a torn write: a step dir without a manifest.
        torn = tmp_path / "step-99999999"
        torn.mkdir()
        assert latest_snapshot(tmp_path).name != "step-99999999"

    def test_missing_directory_has_no_snapshot(self, tmp_path):
        assert latest_snapshot(tmp_path / "absent") is None
        assert list_snapshots(tmp_path / "absent") == []


class TestRestore:
    def test_restore_requires_matching_fingerprint(self, make_config, tmp_path):
        session = TrainingSession(make_config(seed=1))
        for _ in range(4):
            session.tick()
        path = save_session(session, tmp_path)
        with pytest.raises(SnapshotMismatchError):
            restore_session(path, config=make_config(seed=2))

    def test_restore_uses_embedded_config_when_unspecified(self, make_config, tmp_path):
        config = make_config(seed=9, workload="analytic")
        session = TrainingSession(config)
        for _ in range(4):
            session.tick()
        path = save_session(session, tmp_path)
        restored = restore_session(path)
        assert restored.config == config
        assert restored.n_ticks == session.n_ticks

    def test_restore_rejects_unknown_schema(self, make_config, tmp_path):
        session = TrainingSession(make_config())
        session.tick()
        path = save_session(session, tmp_path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema"] = SCHEMA_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="schema version"):
            restore_session(path)

    def test_restore_missing_arrays_rejected(self, make_config, tmp_path):
        session = TrainingSession(make_config())
        session.tick()
        path = save_session(session, tmp_path)
        (path / "arrays.npz").unlink()
        with pytest.raises(SnapshotError, match="arrays.npz"):
            restore_session(path)


class TestResumeOrStart:
    def test_starts_fresh_without_snapshots(self, make_config, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path / "empty"))
        session = resume_or_start(config)
        assert session.n_ticks == 0

    def test_resumes_latest_matching_snapshot(self, make_config, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path))
        session = TrainingSession(config)
        for _ in range(5):
            session.tick()
        save_session(session, tmp_path)
        resumed = resume_or_start(config)
        assert resumed.n_ticks == 5

    def test_mismatching_snapshot_starts_fresh(self, make_config, tmp_path, caplog):
        stale = TrainingSession(make_config(seed=1, checkpoint_dir=str(tmp_path)))
        stale.tick()
        save_session(stale, tmp_path)
        config = make_config(seed=2, checkpoint_dir=str(tmp_path))
        with caplog.at_level("WARNING", logger="repro.checkpoint"):
            session = resume_or_start(config)
        assert session.n_ticks == 0
        assert "different configuration" in caplog.text


class TestPolicy:
    def test_policy_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path)  # no period at all
        with pytest.raises(ValueError):
            CheckpointPolicy(directory=tmp_path, every_n_batches=5, keep=0)

    def test_policy_snapshots_on_batch_period(self, make_config, tmp_path):
        session = TrainingSession(make_config())
        policy = CheckpointPolicy(directory=tmp_path, every_n_batches=10).attach(session)
        session.run()
        assert policy.n_saved >= 2
        assert latest_snapshot(tmp_path) == policy.last_path
        assert len(list_snapshots(tmp_path)) <= policy.keep

    def test_tick_period_fires_before_watermark(self, make_config, tmp_path):
        # A pure-tick policy snapshots during the data-production phase even
        # when no training batch has run yet.
        session = TrainingSession(make_config(reservoir_watermark=120))
        policy = CheckpointPolicy(directory=tmp_path, every_n_ticks=2).attach(session)
        for _ in range(5):
            session.tick()
        assert session.server.iteration == 0
        assert policy.n_saved >= 2

    def test_attached_policy_does_not_resave_restored_state(self, make_config, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path), checkpoint_every=10)
        session = TrainingSession(config)
        for _ in range(8):
            session.tick()
        save_session(session, tmp_path)
        restored = resume_or_start(config)
        policy = CheckpointPolicy(directory=tmp_path, every_n_batches=10).attach(restored)
        assert not policy.should_save(restored)

    def test_session_run_attaches_policy_from_config(self, make_config, tmp_path):
        config = make_config(
            checkpoint_dir=str(tmp_path / "auto"), checkpoint_every=10, checkpoint_keep=2
        )
        TrainingSession(config).run()
        snapshots = list_snapshots(tmp_path / "auto")
        assert 1 <= len(snapshots) <= 2
