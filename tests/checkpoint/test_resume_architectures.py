"""Kill-and-resume bit-identity for tape-trained non-MLP surrogates.

Extends the resume matrix to the architecture registry: sessions whose
surrogate body is a residual or convolutional network — trained entirely
through the recorded-graph backward pass — must survive an arbitrary-tick
kill and restore with bit-identical metrics, series and weights.
"""

from __future__ import annotations

import pytest

from repro.api.session import TrainingSession
from repro.checkpoint import restore_session, save_session

from tests.checkpoint.test_resume_matrix import _drive_to_completion, assert_bit_identical


@pytest.mark.parametrize("architecture", ["residual", "conv2d"])
def test_kill_and_resume_architecture_cell(architecture, make_config, tmp_path):
    config = make_config(
        workload="heat2d",
        method="breed",
        seed=7,
        architecture=architecture,
        hidden_size=4,
        max_iterations=40,
    )
    reference = TrainingSession(config).run()

    killed = TrainingSession(config)
    for _ in range(9):  # die mid-run, well past the watermark
        killed.tick()
    snapshot = save_session(killed, tmp_path)
    del killed

    resumed = _drive_to_completion(restore_session(snapshot))
    assert_bit_identical(resumed, reference)


def test_architecture_survives_snapshot_roundtrip(make_config, tmp_path):
    """The restored model is the same network class, not an MLP fallback."""
    from repro import nn

    config = make_config(architecture="residual", hidden_size=4, max_iterations=40)
    session = TrainingSession(config)
    for _ in range(6):
        session.tick()
    snapshot = save_session(session, tmp_path)
    restored = restore_session(snapshot)
    blocks = [m for m in restored.model.mlp if isinstance(m, nn.Residual)]
    assert len(blocks) == config.n_hidden_layers
