"""Tests for the batch-scheduler simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.melissa.scheduler import BatchScheduler, JobState


def make_scheduler(job_limit=3, delay=0, seed=0):
    return BatchScheduler(job_limit=job_limit, rng=np.random.default_rng(seed), max_start_delay=delay)


class TestSubmission:
    def test_submit_creates_queued_job(self):
        scheduler = make_scheduler()
        job = scheduler.submit(0)
        assert job.state == JobState.QUEUED
        assert scheduler.n_queued == 1

    def test_duplicate_submit_rejected(self):
        scheduler = make_scheduler()
        scheduler.submit(0)
        with pytest.raises(ValueError):
            scheduler.submit(0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            make_scheduler(job_limit=0)
        with pytest.raises(ValueError):
            BatchScheduler(job_limit=1, rng=np.random.default_rng(), max_start_delay=-1)


class TestAdvance:
    def test_starts_up_to_job_limit(self):
        scheduler = make_scheduler(job_limit=2)
        for i in range(5):
            scheduler.submit(i)
        started = scheduler.advance()
        assert len(started) == 2
        assert scheduler.n_running == 2
        assert scheduler.n_queued == 3

    def test_completion_frees_slot(self):
        scheduler = make_scheduler(job_limit=1)
        scheduler.submit(0)
        scheduler.submit(1)
        scheduler.advance()
        scheduler.complete(0)
        assert scheduler.advance() == [1]

    def test_complete_requires_running(self):
        scheduler = make_scheduler()
        scheduler.submit(0)
        with pytest.raises(ValueError):
            scheduler.complete(0)

    def test_no_jobs_started_without_capacity(self):
        scheduler = make_scheduler(job_limit=1)
        scheduler.submit(0)
        scheduler.submit(1)
        scheduler.advance()
        assert scheduler.advance() == []

    def test_start_delay_postpones_eligibility(self):
        scheduler = BatchScheduler(job_limit=10, rng=np.random.default_rng(1), max_start_delay=5)
        for i in range(20):
            scheduler.submit(i)
        first_wave = scheduler.advance()
        # With delays up to 5 ticks, not every queued job is eligible on tick 1.
        assert len(first_wave) < 10
        for _ in range(6):
            scheduler.advance()
        # After the delay window has elapsed, the running set fills the limit.
        assert scheduler.n_running == 10

    def test_jitter_can_reorder_start_order(self):
        # With a wide delay window some seed must start a later-submitted job first.
        reordered = False
        for seed in range(20):
            scheduler = BatchScheduler(job_limit=1, rng=np.random.default_rng(seed), max_start_delay=4)
            scheduler.submit(0)
            scheduler.submit(1)
            for _ in range(6):
                started = scheduler.advance()
                if started:
                    if started[0] == 1:
                        reordered = True
                    break
            if reordered:
                break
        assert reordered


class TestCancelAndSummary:
    def test_cancel_queued(self):
        scheduler = make_scheduler()
        scheduler.submit(0)
        assert scheduler.cancel(0)
        assert scheduler.job(0).state == JobState.CANCELLED

    def test_cancel_running_fails(self):
        scheduler = make_scheduler()
        scheduler.submit(0)
        scheduler.advance()
        assert not scheduler.cancel(0)

    def test_cancel_unknown_fails(self):
        assert not make_scheduler().cancel(99)

    def test_summary_counts(self):
        scheduler = make_scheduler(job_limit=1)
        scheduler.submit(0)
        scheduler.submit(1)
        scheduler.advance()
        scheduler.complete(0)
        summary = scheduler.summary()
        assert summary["completed"] == 1
        assert summary["queued"] == 1
        assert summary["total"] == 2
        assert summary["ticks"] == 1

    def test_jobs_in_state(self):
        scheduler = make_scheduler(job_limit=2)
        scheduler.submit(0)
        scheduler.submit(1)
        scheduler.advance()
        assert set(scheduler.jobs_in_state(JobState.RUNNING)) == {0, 1}


class TestSchedulerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_running_never_exceeds_limit(self, job_limit, delay, n_jobs, seed):
        rng = np.random.default_rng(seed)
        scheduler = BatchScheduler(job_limit=job_limit, rng=rng, max_start_delay=delay)
        for i in range(n_jobs):
            scheduler.submit(i)
        completed = 0
        for _ in range(200):
            scheduler.advance()
            assert scheduler.n_running <= job_limit
            # Randomly complete some running jobs.
            for job_id in list(scheduler.jobs_in_state(JobState.RUNNING)):
                if rng.random() < 0.5:
                    scheduler.complete(job_id)
                    completed += 1
            if completed == n_jobs:
                break
        assert completed == n_jobs
