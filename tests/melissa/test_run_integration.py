"""End-to-end integration tests of the on-line training driver."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.breed.samplers import ParameterSource
from repro.melissa.run import OnlineTrainingConfig, build_sampler, build_solver, run_online_training
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.utils.logging import EventLog


class TestConfigValidation:
    def test_method_checked(self, tiny_heat_config):
        with pytest.raises(ValueError):
            OnlineTrainingConfig(method="bogus", heat=tiny_heat_config)

    def test_counts_checked(self, tiny_heat_config):
        with pytest.raises(ValueError):
            OnlineTrainingConfig(heat=tiny_heat_config, n_simulations=0)
        with pytest.raises(ValueError):
            OnlineTrainingConfig(heat=tiny_heat_config, batch_size=0)
        with pytest.raises(ValueError):
            OnlineTrainingConfig(heat=tiny_heat_config, max_iterations=0)
        with pytest.raises(ValueError):
            OnlineTrainingConfig(
                heat=tiny_heat_config, reservoir_watermark=100, reservoir_capacity=50
            )

    def test_surrogate_config_derived(self, tiny_run_config):
        surrogate = tiny_run_config.surrogate_config
        assert surrogate.input_dim == 6
        assert surrogate.output_dim == tiny_run_config.heat.grid_size ** 2

    def test_paper_scale_values(self, tiny_run_config):
        paper = tiny_run_config.paper_scale()
        assert paper.heat.grid_size == 64
        assert paper.n_simulations == 800
        assert paper.reservoir_watermark == 300
        assert paper.batch_size == 128

    def test_build_helpers(self, tiny_run_config):
        assert build_solver(tiny_run_config).field_size == tiny_run_config.heat.grid_size ** 2
        assert build_sampler(tiny_run_config).name == "Breed"
        assert build_sampler(replace(tiny_run_config, method="random")).name == "Random"


class TestBreedRun:
    @pytest.fixture(scope="class")
    def breed_result(self, tiny_solver):
        from repro.breed.samplers import BreedConfig
        from repro.solvers.heat2d import Heat2DConfig

        config = OnlineTrainingConfig(
            method="breed",
            heat=Heat2DConfig(grid_size=6, n_timesteps=5),
            breed=BreedConfig(sigma=25.0, period=10, window=30, r_start=0.5, r_end=0.7, r_breakpoint=2),
            n_simulations=24,
            hidden_size=8,
            n_hidden_layers=1,
            batch_size=16,
            job_limit=4,
            timesteps_per_tick=1,
            train_iterations_per_tick=2,
            reservoir_capacity=120,
            reservoir_watermark=24,
            max_iterations=60,
            validation_period=20,
            n_validation_trajectories=3,
            record_sample_statistics=True,
            seed=5,
        )
        return run_online_training(config, solver=tiny_solver)

    def test_runs_to_iteration_budget(self, breed_result):
        assert breed_result.history.train_iterations[-1] == 60
        assert len(breed_result.history.train_losses) == 60

    def test_validation_evaluated(self, breed_result):
        assert len(breed_result.history.validation_losses) >= 2
        assert np.isfinite(breed_result.final_validation_loss)

    def test_steering_happened(self, breed_result):
        assert len(breed_result.steering_records) >= 1
        assert breed_result.launcher_summary["overwrites"] >= 1
        sources = set(breed_result.parameter_sources)
        assert sources & {ParameterSource.PROPOSAL, ParameterSource.MIX_UNIFORM}

    def test_executed_parameters_stay_in_bounds(self, breed_result):
        assert HEAT2D_BOUNDS.contains_all(breed_result.executed_parameters)
        assert breed_result.executed_parameters.shape == (24, 5)
        assert len(breed_result.parameter_sources) == 24

    def test_uniform_fraction_in_unit_interval(self, breed_result):
        assert 0.0 <= breed_result.uniform_fraction() <= 1.0

    def test_sample_statistics_recorded(self, breed_result):
        stats = breed_result.history.sample_statistics
        assert len(stats) == 60 * 16  # iterations x batch size
        assert all(s.deviation >= 0.0 for s in stats)

    def test_summaries_consistent(self, breed_result):
        assert breed_result.server_summary["iterations"] == 60.0
        assert breed_result.launcher_summary["total"] == 24
        assert breed_result.reservoir_summary["received"] > 0
        assert breed_result.transport_bytes > 0
        assert breed_result.n_ticks > 0

    def test_training_reduces_loss(self, breed_result):
        losses = breed_result.history.train_losses
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_overfit_gap_finite(self, breed_result):
        assert np.isfinite(breed_result.overfit_gap)


class TestRandomRun:
    def test_random_never_steers(self, tiny_run_config, tiny_solver):
        config = replace(tiny_run_config, method="random")
        result = run_online_training(config, solver=tiny_solver)
        assert result.method == "Random"
        assert result.steering_records == []
        assert result.launcher_summary["overwrites"] == 0
        assert set(result.parameter_sources) == {ParameterSource.INITIAL_UNIFORM}
        assert result.uniform_fraction() == 1.0


class TestReproducibility:
    def test_same_seed_same_curves(self, tiny_run_config, tiny_solver):
        a = run_online_training(tiny_run_config, solver=tiny_solver)
        b = run_online_training(tiny_run_config, solver=tiny_solver)
        np.testing.assert_allclose(a.history.train_losses, b.history.train_losses)
        np.testing.assert_array_equal(a.executed_parameters, b.executed_parameters)

    def test_different_seed_different_curves(self, tiny_run_config, tiny_solver):
        a = run_online_training(tiny_run_config, solver=tiny_solver)
        b = run_online_training(replace(tiny_run_config, seed=99), solver=tiny_solver)
        assert not np.allclose(a.history.train_losses, b.history.train_losses)


class TestEdgeCases:
    def test_watermark_never_reached_terminates(self, tiny_solver):
        from repro.solvers.heat2d import Heat2DConfig

        config = OnlineTrainingConfig(
            method="random",
            heat=Heat2DConfig(grid_size=6, n_timesteps=5),
            n_simulations=2,                      # 12 samples total
            reservoir_capacity=200,
            reservoir_watermark=100,              # unreachable
            batch_size=8,
            job_limit=2,
            max_iterations=50,
            n_validation_trajectories=0,
            seed=1,
        )
        result = run_online_training(config, solver=tiny_solver)
        assert result.history.train_iterations == []
        assert result.launcher_summary["finished"] == 2

    def test_event_log_collects_framework_events(self, tiny_run_config, tiny_solver):
        log = EventLog()
        run_online_training(tiny_run_config, solver=tiny_solver, event_log=log)
        assert log.filter(source="launcher", event="submitted")
        assert log.filter(source="launcher", event="finished")

    def test_shared_validation_set_reused(self, tiny_run_config, tiny_solver, tiny_scalers):
        from repro.surrogate.validation import build_validation_set

        validation = build_validation_set(tiny_solver, HEAT2D_BOUNDS, tiny_scalers, n_trajectories=2)
        result = run_online_training(tiny_run_config, solver=tiny_solver, validation_set=validation)
        assert np.isfinite(result.final_validation_loss)
