"""Tests for the reservoir buffer, including property-based invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.melissa.reservoir import Reservoir


def make_reservoir(capacity=10, watermark=3, seed=0):
    return Reservoir(capacity=capacity, watermark=watermark, rng=np.random.default_rng(seed))


def put_sample(reservoir, sim_id=0, timestep=0):
    return reservoir.put(sim_id, timestep, x=np.array([float(sim_id), float(timestep)]), y=np.zeros(3))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_reservoir(capacity=0)
        with pytest.raises(ValueError):
            make_reservoir(watermark=0)
        with pytest.raises(ValueError):
            make_reservoir(capacity=5, watermark=6)


class TestWatermark:
    def test_not_ready_before_watermark(self):
        reservoir = make_reservoir(capacity=10, watermark=3)
        put_sample(reservoir, 0)
        put_sample(reservoir, 1)
        assert not reservoir.ready_for_training
        assert reservoir.sample_batch(2) is None

    def test_ready_at_watermark(self):
        reservoir = make_reservoir(capacity=10, watermark=3)
        for i in range(3):
            put_sample(reservoir, i)
        assert reservoir.ready_for_training
        assert reservoir.sample_batch(2) is not None


class TestPutAndEviction:
    def test_accepts_until_capacity(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        for i in range(4):
            assert put_sample(reservoir, i)
        assert len(reservoir) == 4
        assert reservoir.is_full

    def test_rejects_when_full_of_unseen_samples(self):
        reservoir = make_reservoir(capacity=3, watermark=1)
        for i in range(3):
            put_sample(reservoir, i)
        # Nothing has been consumed yet: back-pressure.
        assert not reservoir.can_accept()
        assert not put_sample(reservoir, 99)
        assert reservoir.n_rejected == 1
        assert len(reservoir) == 3

    def test_evicts_only_seen_samples(self):
        reservoir = make_reservoir(capacity=3, watermark=1, seed=1)
        for i in range(3):
            put_sample(reservoir, i)
        reservoir.sample_batch(2)  # marks two entries as seen
        assert reservoir.can_accept()
        assert put_sample(reservoir, 99)
        assert reservoir.n_evicted == 1
        # The surviving unseen entry must still be present.
        sim_ids = {e.simulation_id for e in reservoir.entries()}
        assert 99 in sim_ids
        assert len(sim_ids & {0, 1, 2}) == 2

    def test_size_never_exceeds_capacity(self):
        reservoir = make_reservoir(capacity=5, watermark=1)
        for i in range(20):
            put_sample(reservoir, i)
            reservoir.sample_batch(3)
            assert len(reservoir) <= 5

    def test_received_counter(self):
        reservoir = make_reservoir()
        put_sample(reservoir, 0)
        put_sample(reservoir, 1)
        assert reservoir.n_received == 2


class TestSampling:
    def test_batch_contents_and_shapes(self):
        reservoir = make_reservoir(capacity=10, watermark=2)
        for i in range(6):
            put_sample(reservoir, i, timestep=i)
        batch = reservoir.sample_batch(4)
        assert batch is not None
        assert len(batch) == 4
        assert batch.inputs.shape == (4, 2)
        assert batch.targets.shape == (4, 3)
        assert batch.simulation_ids.shape == (4,)
        # No duplicates within one batch (sampling without replacement).
        assert len(set(batch.simulation_ids.tolist())) == 4

    def test_batch_larger_than_buffer_returns_everything(self):
        reservoir = make_reservoir(capacity=10, watermark=2)
        for i in range(3):
            put_sample(reservoir, i)
        batch = reservoir.sample_batch(8)
        assert batch is not None and len(batch) == 3

    def test_seen_counts_increment(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        for i in range(4):
            put_sample(reservoir, i)
        reservoir.sample_batch(4)
        reservoir.sample_batch(4)
        assert np.all(reservoir.seen_counts() == 2)
        mean_reuse, max_reuse = reservoir.reuse_statistics()
        assert mean_reuse == 2.0 and max_reuse == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            make_reservoir().sample_batch(0)

    def test_batches_counted(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        put_sample(reservoir, 0)
        reservoir.sample_batch(1)
        assert reservoir.n_batches == 1

    def test_summary_keys(self):
        summary = make_reservoir().summary()
        assert {"size", "capacity", "received", "rejected", "evicted", "batches"} <= set(summary)

    def test_reuse_statistics_empty(self):
        assert make_reservoir().reuse_statistics() == (0.0, 0)


class TestReservoirInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=20),
        n_operations=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_random_workload_invariants(self, capacity, n_operations, seed):
        rng = np.random.default_rng(seed)
        watermark = max(1, capacity // 2)
        reservoir = Reservoir(capacity=capacity, watermark=watermark, rng=np.random.default_rng(seed + 1))
        accepted = 0
        rejected = 0
        for op in range(n_operations):
            if rng.random() < 0.6:
                ok = reservoir.put(op, op, np.array([float(op)]), np.array([0.0]))
                accepted += int(ok)
                rejected += int(not ok)
            else:
                batch = reservoir.sample_batch(int(rng.integers(1, 8)))
                if not reservoir.ready_for_training:
                    assert batch is None
            # Invariants.
            assert len(reservoir) <= capacity
            assert reservoir.n_unseen <= len(reservoir)
            assert reservoir.n_received == accepted + rejected
            assert reservoir.n_rejected == rejected
            # A rejection may only ever happen when the buffer is full.
            if rejected and len(reservoir) < capacity:
                pytest.fail("sample rejected while the reservoir had free space")


class _ReferenceReservoir:
    """The pre-vectorisation entry-list implementation, kept as the oracle."""

    def __init__(self, capacity, watermark, rng):
        self.capacity = capacity
        self.watermark = watermark
        self._rng = rng
        self._entries = []

    def put(self, simulation_id, timestep, x, y):
        from repro.melissa.reservoir import ReservoirEntry

        entry = ReservoirEntry(simulation_id=simulation_id, timestep=timestep, x=x, y=y)
        if len(self._entries) < self.capacity:
            self._entries.append(entry)
            return True
        seen_indices = [i for i, e in enumerate(self._entries) if e.seen_count > 0]
        if not seen_indices:
            return False
        victim = int(self._rng.choice(seen_indices))
        self._entries[victim] = entry
        return True

    def sample_batch(self, batch_size):
        if len(self._entries) < self.watermark or not self._entries:
            return None
        n = len(self._entries)
        take = min(batch_size, n)
        indices = self._rng.choice(n, size=take, replace=False)
        xs = np.stack([self._entries[i].x for i in indices], axis=0)
        ys = np.stack([self._entries[i].y for i in indices], axis=0)
        sim_ids = np.array([self._entries[i].simulation_id for i in indices], dtype=np.int64)
        steps = np.array([self._entries[i].timestep for i in indices], dtype=np.int64)
        for i in indices:
            self._entries[i].seen_count += 1
        return xs, ys, sim_ids, steps


class TestVectorisedBitIdentity:
    """SoA storage must replay the entry-list implementation bit-for-bit:
    identical RNG consumption, identical batch payloads, identical state."""

    def test_random_op_sequence_matches_reference(self):
        driver = np.random.default_rng(7)
        for seed in range(5):
            reservoir = Reservoir(capacity=12, watermark=4, rng=np.random.default_rng(seed))
            reference = _ReferenceReservoir(capacity=12, watermark=4, rng=np.random.default_rng(seed))
            for op in range(300):
                if driver.random() < 0.6:
                    x = driver.random(3)
                    y = driver.random(5)
                    assert reservoir.put(op, op % 11, x, y) == reference.put(op, op % 11, x, y)
                else:
                    size = int(driver.integers(1, 9))
                    got = reservoir.sample_batch(size)
                    want = reference.sample_batch(size)
                    assert (got is None) == (want is None)
                    if got is not None:
                        np.testing.assert_array_equal(got.inputs, want[0])
                        np.testing.assert_array_equal(got.simulation_ids, want[2])
            # Final buffer content must agree entry by entry.
            entries = reservoir.entries()
            assert len(entries) == len(reference._entries)
            for got_entry, want_entry in zip(entries, reference._entries):
                assert got_entry.simulation_id == want_entry.simulation_id
                assert got_entry.seen_count == want_entry.seen_count
                np.testing.assert_array_equal(got_entry.x, want_entry.x)

    def test_interleaved_draws_match_reference_exactly(self):
        reservoir = Reservoir(capacity=10, watermark=3, rng=np.random.default_rng(3))
        reference = _ReferenceReservoir(capacity=10, watermark=3, rng=np.random.default_rng(3))
        payload = np.random.default_rng(9)
        for op in range(200):
            x = payload.random(4)
            y = payload.random(6)
            assert reservoir.put(op, op % 13, x, y) == reference.put(op, op % 13, x, y)
            if op % 3 == 2:
                got = reservoir.sample_batch(4)
                want = reference.sample_batch(4)
                assert (got is None) == (want is None)
                if got is not None:
                    np.testing.assert_array_equal(got.inputs, want[0])
                    np.testing.assert_array_equal(got.targets, want[1])
                    np.testing.assert_array_equal(got.simulation_ids, want[2])
                    np.testing.assert_array_equal(got.timesteps, want[3])
        np.testing.assert_array_equal(
            reservoir.seen_counts(),
            np.array([e.seen_count for e in reference._entries], dtype=np.int64),
        )

    def test_state_dict_round_trip_preserves_layout(self):
        reservoir = make_reservoir(capacity=6, watermark=2, seed=5)
        for i in range(6):
            put_sample(reservoir, i, timestep=i)
        reservoir.sample_batch(3)
        state = reservoir.state_dict()
        clone = make_reservoir(capacity=6, watermark=2, seed=5)
        clone.load_state_dict(state)
        assert clone.state_dict().keys() == state.keys()
        for key, value in state.items():
            np.testing.assert_array_equal(clone.state_dict()[key], value)
        # The restored buffer draws identically (same rng, same layout).
        other = make_reservoir(capacity=6, watermark=2, seed=5)
        other.load_state_dict(state)
        a = clone.sample_batch(4)
        b = other.sample_batch(4)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.simulation_ids, b.simulation_ids)

    def test_mismatched_sample_dimensions_raise(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        put_sample(reservoir, 0)
        with pytest.raises(ValueError, match="buffer layout"):
            reservoir.put(1, 0, x=np.zeros(7), y=np.zeros(3))
