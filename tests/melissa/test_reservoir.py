"""Tests for the reservoir buffer, including property-based invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.melissa.reservoir import Reservoir


def make_reservoir(capacity=10, watermark=3, seed=0):
    return Reservoir(capacity=capacity, watermark=watermark, rng=np.random.default_rng(seed))


def put_sample(reservoir, sim_id=0, timestep=0):
    return reservoir.put(sim_id, timestep, x=np.array([float(sim_id), float(timestep)]), y=np.zeros(3))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_reservoir(capacity=0)
        with pytest.raises(ValueError):
            make_reservoir(watermark=0)
        with pytest.raises(ValueError):
            make_reservoir(capacity=5, watermark=6)


class TestWatermark:
    def test_not_ready_before_watermark(self):
        reservoir = make_reservoir(capacity=10, watermark=3)
        put_sample(reservoir, 0)
        put_sample(reservoir, 1)
        assert not reservoir.ready_for_training
        assert reservoir.sample_batch(2) is None

    def test_ready_at_watermark(self):
        reservoir = make_reservoir(capacity=10, watermark=3)
        for i in range(3):
            put_sample(reservoir, i)
        assert reservoir.ready_for_training
        assert reservoir.sample_batch(2) is not None


class TestPutAndEviction:
    def test_accepts_until_capacity(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        for i in range(4):
            assert put_sample(reservoir, i)
        assert len(reservoir) == 4
        assert reservoir.is_full

    def test_rejects_when_full_of_unseen_samples(self):
        reservoir = make_reservoir(capacity=3, watermark=1)
        for i in range(3):
            put_sample(reservoir, i)
        # Nothing has been consumed yet: back-pressure.
        assert not reservoir.can_accept()
        assert not put_sample(reservoir, 99)
        assert reservoir.n_rejected == 1
        assert len(reservoir) == 3

    def test_evicts_only_seen_samples(self):
        reservoir = make_reservoir(capacity=3, watermark=1, seed=1)
        for i in range(3):
            put_sample(reservoir, i)
        reservoir.sample_batch(2)  # marks two entries as seen
        assert reservoir.can_accept()
        assert put_sample(reservoir, 99)
        assert reservoir.n_evicted == 1
        # The surviving unseen entry must still be present.
        sim_ids = {e.simulation_id for e in reservoir.entries()}
        assert 99 in sim_ids
        assert len(sim_ids & {0, 1, 2}) == 2

    def test_size_never_exceeds_capacity(self):
        reservoir = make_reservoir(capacity=5, watermark=1)
        for i in range(20):
            put_sample(reservoir, i)
            reservoir.sample_batch(3)
            assert len(reservoir) <= 5

    def test_received_counter(self):
        reservoir = make_reservoir()
        put_sample(reservoir, 0)
        put_sample(reservoir, 1)
        assert reservoir.n_received == 2


class TestSampling:
    def test_batch_contents_and_shapes(self):
        reservoir = make_reservoir(capacity=10, watermark=2)
        for i in range(6):
            put_sample(reservoir, i, timestep=i)
        batch = reservoir.sample_batch(4)
        assert batch is not None
        assert len(batch) == 4
        assert batch.inputs.shape == (4, 2)
        assert batch.targets.shape == (4, 3)
        assert batch.simulation_ids.shape == (4,)
        # No duplicates within one batch (sampling without replacement).
        assert len(set(batch.simulation_ids.tolist())) == 4

    def test_batch_larger_than_buffer_returns_everything(self):
        reservoir = make_reservoir(capacity=10, watermark=2)
        for i in range(3):
            put_sample(reservoir, i)
        batch = reservoir.sample_batch(8)
        assert batch is not None and len(batch) == 3

    def test_seen_counts_increment(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        for i in range(4):
            put_sample(reservoir, i)
        reservoir.sample_batch(4)
        reservoir.sample_batch(4)
        assert np.all(reservoir.seen_counts() == 2)
        mean_reuse, max_reuse = reservoir.reuse_statistics()
        assert mean_reuse == 2.0 and max_reuse == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            make_reservoir().sample_batch(0)

    def test_batches_counted(self):
        reservoir = make_reservoir(capacity=4, watermark=1)
        put_sample(reservoir, 0)
        reservoir.sample_batch(1)
        assert reservoir.n_batches == 1

    def test_summary_keys(self):
        summary = make_reservoir().summary()
        assert {"size", "capacity", "received", "rejected", "evicted", "batches"} <= set(summary)

    def test_reuse_statistics_empty(self):
        assert make_reservoir().reuse_statistics() == (0.0, 0)


class TestReservoirInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=20),
        n_operations=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_random_workload_invariants(self, capacity, n_operations, seed):
        rng = np.random.default_rng(seed)
        watermark = max(1, capacity // 2)
        reservoir = Reservoir(capacity=capacity, watermark=watermark, rng=np.random.default_rng(seed + 1))
        accepted = 0
        rejected = 0
        for op in range(n_operations):
            if rng.random() < 0.6:
                ok = reservoir.put(op, op, np.array([float(op)]), np.array([0.0]))
                accepted += int(ok)
                rejected += int(not ok)
            else:
                batch = reservoir.sample_batch(int(rng.integers(1, 8)))
                if not reservoir.ready_for_training:
                    assert batch is None
            # Invariants.
            assert len(reservoir) <= capacity
            assert reservoir.n_unseen <= len(reservoir)
            assert reservoir.n_received == accepted + rejected
            assert reservoir.n_rejected == rejected
            # A rejection may only ever happen when the buffer is full.
            if rejected and len(reservoir) < capacity:
                pytest.fail("sample rejected while the reservoir had free space")
