"""Tests for the training server (reception, training loop, statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.breed.controller import BreedController
from repro.breed.samplers import BreedConfig, BreedSampler, RandomSampler
from repro.melissa.messages import TimeStepMessage
from repro.melissa.reservoir import Reservoir
from repro.melissa.server import TrainingServer
from repro.nn.optim import Adam
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.surrogate.model import DirectSurrogate, SurrogateConfig
from repro.surrogate.validation import build_validation_set


def make_server(
    tiny_solver,
    tiny_scalers,
    method="random",
    batch_size=8,
    watermark=6,
    capacity=64,
    with_validation=False,
    record_stats=False,
    seed=0,
):
    rng = np.random.default_rng(seed)
    model = DirectSurrogate(
        SurrogateConfig(output_dim=tiny_solver.field_size, hidden_size=8, n_hidden_layers=1),
        tiny_scalers,
        rng=rng,
    )
    sampler = (
        BreedSampler(HEAT2D_BOUNDS, BreedConfig(sigma=25.0, period=5, window=20))
        if method == "breed"
        else RandomSampler(HEAT2D_BOUNDS)
    )
    sampler.initial_parameters(16, rng)
    controller = BreedController(sampler=sampler, rng=rng)
    validation = (
        build_validation_set(tiny_solver, HEAT2D_BOUNDS, tiny_scalers, n_trajectories=2)
        if with_validation
        else None
    )
    server = TrainingServer(
        model=model,
        optimizer=Adam(model.parameters(), lr=1e-3),
        reservoir=Reservoir(capacity=capacity, watermark=watermark, rng=rng),
        controller=controller,
        batch_size=batch_size,
        validation_set=validation,
        validation_period=5,
        record_sample_statistics=record_stats,
    )
    return server


def feed_trajectory(server, tiny_solver, sim_id=0, params=(300.0, 100.0, 500.0, 200.0, 400.0)):
    accepted = 0
    for timestep, field in enumerate(tiny_solver.steps(np.array(params))):
        message = TimeStepMessage(
            simulation_id=sim_id, parameters=np.array(params), timestep=timestep, payload=field
        )
        if server.receive(message):
            accepted += 1
    return accepted


class TestReception:
    def test_receive_normalises_and_stores(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers)
        accepted = feed_trajectory(server, tiny_solver)
        assert accepted == tiny_solver.n_timesteps + 1
        assert len(server.reservoir) == accepted
        entry = server.reservoir.entries()[0]
        assert entry.x.shape == (6,)
        assert np.all((entry.x >= 0.0) & (entry.x <= 1.0))

    def test_backpressure_when_reservoir_saturated(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, capacity=4, watermark=2)
        feed_trajectory(server, tiny_solver, sim_id=0)
        # Buffer full of unseen samples -> further receives are rejected.
        rejected_before = server.reservoir.n_rejected
        assert not server.receive(
            TimeStepMessage(simulation_id=1, parameters=np.full(5, 300.0), timestep=0,
                            payload=np.full(tiny_solver.field_size, 300.0))
        )
        assert server.reservoir.n_rejected == rejected_before + 1


class TestTraining:
    def test_not_ready_before_watermark(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, watermark=50)
        feed_trajectory(server, tiny_solver)
        assert not server.ready
        assert server.train_iteration() is None
        assert server.iteration == 0

    def test_train_iteration_records_history(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers)
        feed_trajectory(server, tiny_solver)
        loss = server.train_iteration()
        assert loss is not None and np.isfinite(loss)
        assert server.iteration == 1
        assert server.history.train_losses == [loss]
        assert server.history.train_iterations == [1]

    def test_loss_decreases_over_many_iterations(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, batch_size=16)
        for sim_id in range(3):
            feed_trajectory(server, tiny_solver, sim_id=sim_id)
        losses = [server.train_iteration() for _ in range(120)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_validation_runs_periodically(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, with_validation=True)
        feed_trajectory(server, tiny_solver)
        for _ in range(10):
            server.train_iteration()
        assert server.history.validation_iterations == [5, 10]
        assert all(np.isfinite(v) for v in server.history.validation_losses)

    def test_evaluate_validation_on_demand(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, with_validation=True)
        value = server.evaluate_validation()
        assert value is not None and np.isfinite(value)
        assert make_server(tiny_solver, tiny_scalers).evaluate_validation() is None

    def test_losses_feed_breed_tracker(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, method="breed")
        feed_trajectory(server, tiny_solver, sim_id=0)
        server.train_iteration()
        sampler = server.controller.sampler
        assert len(sampler.tracker.observed_ids()) >= 1  # type: ignore[attr-defined]

    def test_sample_statistics_recorded(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, record_stats=True, batch_size=4)
        feed_trajectory(server, tiny_solver)
        server.train_iteration()
        stats = server.history.sample_statistics
        assert len(stats) == 4
        row = stats[0]
        assert row.iteration == 1
        assert np.isfinite(row.sample_loss) and row.deviation >= 0.0

    def test_mark_parameter_source_used_in_statistics(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, record_stats=True, batch_size=4)
        server.mark_parameter_source(0, uniform=False)
        feed_trajectory(server, tiny_solver, sim_id=0)
        server.train_iteration()
        assert all(not s.uniform for s in server.history.sample_statistics)

    def test_summary_keys(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers)
        feed_trajectory(server, tiny_solver)
        server.train_iteration()
        summary = server.summary()
        assert {"iterations", "samples_received", "final_train_loss", "steering_events"} <= set(summary)

    def test_invalid_construction(self, tiny_solver, tiny_scalers):
        with pytest.raises(ValueError):
            make_server(tiny_solver, tiny_scalers, batch_size=0)


class TestHistory:
    def test_as_arrays_and_finals(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers, with_validation=True)
        feed_trajectory(server, tiny_solver)
        for _ in range(6):
            server.train_iteration()
        train_iters, train_losses, val_iters, val_losses = server.history.as_arrays()
        assert train_iters.shape == train_losses.shape == (6,)
        assert val_iters.shape == val_losses.shape
        assert server.history.final_train_loss() == train_losses[-1]
        assert server.history.final_validation_loss() == val_losses[-1]

    def test_empty_history_nan_finals(self, tiny_solver, tiny_scalers):
        server = make_server(tiny_solver, tiny_scalers)
        assert np.isnan(server.history.final_train_loss())
        assert np.isnan(server.history.final_validation_loss())
