"""Tests for the message types and in-process transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.melissa.messages import (
    ParameterUpdate,
    SimulationFinished,
    SimulationStarted,
    StopClient,
    TimeStepMessage,
)
from repro.melissa.transport import Channel, InProcessTransport


class TestMessages:
    def test_timestep_message_flattens_payload(self):
        msg = TimeStepMessage(simulation_id=1, parameters=[1.0, 2.0], timestep=3, payload=np.ones((2, 2)))
        assert msg.payload.shape == (4,)
        assert msg.parameters.dtype == np.float64
        assert msg.nbytes > 0

    def test_simulation_started_finished(self):
        started = SimulationStarted(simulation_id=2, parameters=[1.0])
        finished = SimulationFinished(simulation_id=2, n_timesteps=10)
        assert started.simulation_id == finished.simulation_id == 2
        assert finished.n_timesteps == 10

    def test_parameter_update_defaults(self):
        update = ParameterUpdate(simulation_id=4, parameters=[1.0, 2.0])
        assert update.source == "proposal"

    def test_stop_client_broadcast(self):
        assert StopClient().simulation_id is None

    def test_messages_are_frozen(self):
        msg = TimeStepMessage(simulation_id=1, timestep=0)
        with pytest.raises(Exception):
            msg.timestep = 5  # type: ignore[misc]


class TestChannel:
    def test_fifo_order(self):
        channel = Channel("test")
        for i in range(3):
            channel.put(TimeStepMessage(simulation_id=i, timestep=i))
        assert [channel.get().simulation_id for _ in range(3)] == [0, 1, 2]

    def test_get_empty_returns_none(self):
        assert Channel("x").get() is None

    def test_bounded_channel_backpressure(self):
        channel = Channel("bounded", maxsize=2)
        assert channel.put(TimeStepMessage(simulation_id=0))
        assert channel.put(TimeStepMessage(simulation_id=1))
        assert not channel.put(TimeStepMessage(simulation_id=2))
        channel.get()
        assert channel.put(TimeStepMessage(simulation_id=2))

    def test_drain_with_limit(self):
        channel = Channel("d")
        for i in range(5):
            channel.put(TimeStepMessage(simulation_id=i))
        assert len(channel.drain(limit=3)) == 3
        assert len(channel) == 2
        assert len(channel.drain()) == 2

    def test_rejected_put_counts_as_dropped(self):
        channel = Channel("bounded", maxsize=1)
        assert channel.put(TimeStepMessage(simulation_id=0))
        assert not channel.put(TimeStepMessage(simulation_id=1))
        assert not channel.put(TimeStepMessage(simulation_id=2))
        assert channel.stats.n_dropped == 2
        # Accepted messages are not counted as drops.
        assert channel.stats.n_messages == 1
        channel.get()
        assert channel.put(TimeStepMessage(simulation_id=1))
        assert channel.stats.n_dropped == 2

    def test_unbounded_channel_never_drops(self):
        channel = Channel("unbounded")
        for i in range(10):
            assert channel.put(TimeStepMessage(simulation_id=i))
        assert channel.stats.n_dropped == 0

    def test_stats_accumulate_bytes(self):
        channel = Channel("stats")
        channel.put(TimeStepMessage(simulation_id=0, payload=np.zeros(100)))
        channel.put(TimeStepMessage(simulation_id=1, payload=np.zeros(100)))
        assert channel.stats.n_messages == 2
        assert channel.stats.n_bytes >= 2 * 100 * 8
        assert channel.stats.max_depth == 2


class TestBatchedAccounting:
    def _chunk(self, n: int) -> list:
        # A realistic trajectory chunk: mostly payloads plus a lifecycle
        # message, so the byte counter's isinstance filter is exercised.
        messages = [
            TimeStepMessage(simulation_id=0, timestep=t, payload=np.zeros(50))
            for t in range(n)
        ]
        messages.append(SimulationFinished(simulation_id=0, n_timesteps=n))
        return messages

    def test_account_batch_totals_match_per_message_accounting(self):
        batched, sequential = Channel("b"), Channel("s")
        chunk = self._chunk(7)
        batched.account_batch(chunk)
        for message in chunk:
            sequential.account(message)
        assert batched.stats == sequential.stats

    def test_account_batch_counts_queue_depth(self):
        channel = Channel("d")
        channel.put(TimeStepMessage(simulation_id=0))
        channel.put(TimeStepMessage(simulation_id=1))
        channel.account_batch(self._chunk(3))
        # account never enqueues: depth is the resident queue's, and the
        # message/byte counters still advance.
        assert len(channel) == 2
        assert channel.stats.max_depth == 2
        assert channel.stats.n_messages == 2 + 4

    def test_account_batch_empty_is_a_noop(self):
        channel = Channel("e")
        channel.account_batch([])
        assert channel.stats.n_messages == 0
        assert channel.stats.max_depth == 0

    def test_transport_account_batch_state_dict_layout_unchanged(self):
        batched, sequential = InProcessTransport(), InProcessTransport()
        chunk = self._chunk(5)
        batched.account_batch(chunk)
        for message in chunk:
            sequential.account(message)
        assert batched.state_dict() == sequential.state_dict()
        # The layout round-trips through load_state_dict as before.
        restored = InProcessTransport()
        restored.load_state_dict(batched.state_dict())
        assert restored.state_dict() == batched.state_dict()


class TestInProcessTransport:
    def test_default_channels_exist(self):
        transport = InProcessTransport()
        assert transport.data is transport.channel("data")
        assert transport.steering.name == "steering"
        assert transport.jobs.name == "jobs"

    def test_channel_created_on_demand(self):
        transport = InProcessTransport()
        extra = transport.channel("monitoring")
        assert transport.channel("monitoring") is extra

    def test_total_counters(self):
        transport = InProcessTransport()
        transport.data.put(TimeStepMessage(simulation_id=0, payload=np.zeros(10)))
        transport.jobs.put(SimulationStarted(simulation_id=0))
        assert transport.total_messages() == 2
        assert transport.total_bytes() > 0

    def test_data_channel_maxsize(self):
        transport = InProcessTransport(data_channel_maxsize=1)
        assert transport.data.put(TimeStepMessage(simulation_id=0))
        assert not transport.data.put(TimeStepMessage(simulation_id=1))
        assert transport.total_dropped() == 1
