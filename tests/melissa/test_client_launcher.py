"""Tests for the solver clients and the launcher's steering semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.breed.samplers import ParameterSource
from repro.melissa.client import ClientFactory, SolverClient
from repro.melissa.launcher import Launcher, SimulationState
from repro.melissa.scheduler import BatchScheduler
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.sampling.uniform import uniform_in_bounds
from repro.utils.logging import EventLog


@pytest.fixture
def params():
    return [300.0, 100.0, 500.0, 200.0, 400.0]


class TestSolverClient:
    def test_streams_full_trajectory(self, tiny_solver, params):
        client = SolverClient(0, np.array(params), tiny_solver)
        messages = client.produce(max_steps=100)
        assert len(messages) == tiny_solver.n_timesteps + 1
        assert client.finished
        assert client.n_produced == len(messages)
        assert [m.timestep for m in messages] == list(range(len(messages)))

    def test_incremental_production(self, tiny_solver, params):
        client = SolverClient(1, np.array(params), tiny_solver)
        first = client.produce(2)
        second = client.produce(2)
        assert [m.timestep for m in first] == [0, 1]
        assert [m.timestep for m in second] == [2, 3]
        assert not client.finished

    def test_payload_matches_direct_solve(self, tiny_solver, params):
        client = SolverClient(0, np.array(params), tiny_solver)
        messages = client.produce(100)
        reference = tiny_solver.solve(params)
        np.testing.assert_allclose(messages[-1].payload, reference.final_field)

    def test_produce_after_finish_returns_empty(self, tiny_solver, params):
        client = SolverClient(0, np.array(params), tiny_solver)
        client.produce(100)
        assert client.produce(5) == []

    def test_invalid_max_steps(self, tiny_solver, params):
        with pytest.raises(ValueError):
            SolverClient(0, np.array(params), tiny_solver).produce(0)

    def test_finish_message(self, tiny_solver, params):
        client = SolverClient(3, np.array(params), tiny_solver)
        client.produce(100)
        msg = client.finish_message()
        assert msg.simulation_id == 3
        assert msg.n_timesteps == client.n_produced

    def test_expected_timesteps(self, tiny_solver, params):
        assert SolverClient(0, np.array(params), tiny_solver).expected_timesteps == tiny_solver.n_timesteps + 1

    def test_factory_records_created_clients(self, tiny_solver, params):
        factory = ClientFactory(solver=tiny_solver)
        factory.create(0, np.array(params))
        factory.create(1, np.array(params))
        assert factory.created == [0, 1]


def make_launcher(tiny_solver, n_simulations=12, job_limit=3, delay=0, seed=0, event_log=None):
    rng = np.random.default_rng(seed)
    params = uniform_in_bounds(n_simulations, HEAT2D_BOUNDS, rng)
    scheduler = BatchScheduler(job_limit=job_limit, rng=rng, max_start_delay=delay)
    return Launcher(params, ClientFactory(solver=tiny_solver), scheduler, event_log=event_log)


class TestLauncherSubmission:
    def test_budget_and_initial_state(self, tiny_solver):
        launcher = make_launcher(tiny_solver)
        assert launcher.budget == 12
        assert launcher.count_state(SimulationState.PENDING) == 12
        assert launcher.highest_submitted_id == -1

    def test_empty_budget_rejected(self, tiny_solver):
        with pytest.raises(ValueError):
            Launcher(
                np.empty((0, 5)),
                ClientFactory(solver=tiny_solver),
                BatchScheduler(1, np.random.default_rng(0)),
            )

    def test_submit_respects_job_limit(self, tiny_solver):
        launcher = make_launcher(tiny_solver, job_limit=3)
        submitted = launcher.submit_available()
        assert submitted == [0, 1, 2]
        assert launcher.highest_submitted_id == 2
        # No further submissions until something finishes.
        assert launcher.submit_available() == []

    def test_start_and_finish_lifecycle(self, tiny_solver):
        launcher = make_launcher(tiny_solver, job_limit=2)
        launcher.submit_available()
        clients = launcher.advance_scheduler()
        assert len(clients) == 2
        assert launcher.count_state(SimulationState.RUNNING) == 2
        launcher.mark_finished(clients[0].simulation_id)
        assert launcher.count_state(SimulationState.FINISHED) == 1
        # A freed slot allows the next submission.
        assert launcher.submit_available() == [2]

    def test_mark_finished_requires_running(self, tiny_solver):
        launcher = make_launcher(tiny_solver)
        with pytest.raises(ValueError):
            launcher.mark_finished(0)

    def test_running_clients_listing(self, tiny_solver):
        launcher = make_launcher(tiny_solver, job_limit=2)
        launcher.submit_available()
        launcher.advance_scheduler()
        assert len(launcher.running_clients()) == 2

    def test_all_finished(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=2, job_limit=2)
        launcher.submit_available()
        clients = launcher.advance_scheduler()
        for client in clients:
            launcher.mark_finished(client.simulation_id)
        assert launcher.all_finished

    def test_events_emitted(self, tiny_solver):
        log = EventLog()
        launcher = make_launcher(tiny_solver, job_limit=1, event_log=log)
        launcher.submit_available()
        launcher.advance_scheduler()
        assert log.filter(source="launcher", event="submitted")
        assert log.filter(source="launcher", event="started")


class TestLauncherSteering:
    def test_steerable_ids_respect_k_plus_m_rule(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=12, job_limit=3)
        launcher.submit_available()           # submits 0, 1, 2 -> k = 2
        steerable = launcher.steerable_simulation_ids()
        # Rule: only pending ids >= k + m = 2 + 3 = 5 are steerable.
        assert steerable == list(range(5, 12))

    def test_steerable_before_any_submission(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=6, job_limit=3)
        # k = -1, threshold = 2: ids 2..5 steerable.
        assert launcher.steerable_simulation_ids() == [2, 3, 4, 5]

    def test_steerable_excludes_submitted(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=6, job_limit=2)
        launcher.submit_available()
        steerable = launcher.steerable_simulation_ids()
        assert 0 not in steerable and 1 not in steerable

    def test_update_parameters_overwrites_pending(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=8, job_limit=2)
        launcher.submit_available()
        target = launcher.steerable_simulation_ids()[0]
        new_params = np.full(5, 321.0)
        launcher.update_parameters(target, new_params, ParameterSource.PROPOSAL)
        record = launcher.records[target]
        np.testing.assert_array_equal(record.parameters, new_params)
        assert record.source == ParameterSource.PROPOSAL
        assert record.n_updates == 1
        assert record.history == [ParameterSource.PROPOSAL]

    def test_update_parameters_rejected_for_non_pending(self, tiny_solver):
        launcher = make_launcher(tiny_solver, job_limit=2)
        launcher.submit_available()
        with pytest.raises(ValueError):
            launcher.update_parameters(0, np.full(5, 300.0), ParameterSource.PROPOSAL)

    def test_started_client_uses_latest_parameters(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=6, job_limit=1)
        new_params = np.full(5, 444.0)
        launcher.update_parameters(4, new_params, ParameterSource.PROPOSAL)
        # Run the first four simulations to completion so 4 eventually starts.
        started_params = None
        for _ in range(50):
            launcher.submit_available()
            for client in launcher.advance_scheduler():
                if client.simulation_id == 4:
                    started_params = client.parameters
                launcher.mark_finished(client.simulation_id)
            if started_params is not None:
                break
        np.testing.assert_array_equal(started_params, new_params)

    def test_executed_parameters_and_sources(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=6, job_limit=2)
        launcher.update_parameters(5, np.full(5, 200.0), ParameterSource.MIX_UNIFORM)
        params, sources = launcher.executed_parameters()
        assert params.shape == (6, 5)
        assert sources[5] == ParameterSource.MIX_UNIFORM
        assert sources[0] == ParameterSource.INITIAL_UNIFORM

    def test_summary_counts_overwrites(self, tiny_solver):
        launcher = make_launcher(tiny_solver, n_simulations=6, job_limit=2)
        launcher.update_parameters(5, np.full(5, 200.0), ParameterSource.PROPOSAL)
        launcher.update_parameters(5, np.full(5, 220.0), ParameterSource.PROPOSAL)
        summary = launcher.summary()
        assert summary["overwrites"] == 2
        assert summary["total"] == 6
