"""Delta computation and the regression gate of ``bench --compare``."""

from __future__ import annotations

import pytest

from repro.bench import compare_reports, format_comparison


def with_best(report: dict, name: str, best: float) -> dict:
    for entry in report["results"]:
        if entry["name"] == name:
            entry["best_seconds"] = best
            entry["wall_times"] = [best] * entry["repeats"]
            entry["mean_seconds"] = best
            entry["units_per_second"] = entry["n_units"] / best
    return report


class TestDeltas:
    def test_percent_delta_is_relative_to_baseline(self, synthetic_report):
        baseline = with_best(synthetic_report(), "a/x", 0.100)
        current = with_best(synthetic_report(), "a/x", 0.150)
        comparison = compare_reports(baseline, current, threshold_pct=10.0)
        delta = {d.name: d for d in comparison.deltas}["a/x"]
        assert delta.delta_pct == pytest.approx(50.0)
        assert delta.speedup == pytest.approx(0.100 / 0.150)
        assert delta.regressed

    def test_faster_scenario_has_negative_delta(self, synthetic_report):
        baseline = with_best(synthetic_report(), "a/y", 0.200)
        current = with_best(synthetic_report(), "a/y", 0.050)
        comparison = compare_reports(baseline, current, threshold_pct=10.0)
        delta = {d.name: d for d in comparison.deltas}["a/y"]
        assert delta.delta_pct == pytest.approx(-75.0)
        assert not delta.regressed

    def test_threshold_boundary_is_not_a_regression(self, synthetic_report):
        baseline = with_best(synthetic_report(), "a/x", 0.100)
        current = with_best(synthetic_report(), "a/x", 0.110)
        comparison = compare_reports(baseline, current, threshold_pct=10.0)
        assert not comparison.has_regressions  # exactly +10% is allowed

    def test_injected_slowdown_is_flagged(self, synthetic_report):
        baseline = synthetic_report()
        current = synthetic_report()
        for entry in current["results"]:
            with_best(current, entry["name"], entry["best_seconds"] * 2.0)
        comparison = compare_reports(baseline, current, threshold_pct=15.0)
        assert comparison.has_regressions
        assert {d.name for d in comparison.regressions} == {"a/x", "a/y"}

    def test_negative_threshold_rejected(self, synthetic_report):
        with pytest.raises(ValueError):
            compare_reports(synthetic_report(), synthetic_report(), threshold_pct=-1.0)


class TestScenarioMatching:
    def test_unmatched_scenarios_are_listed_not_failed(self, synthetic_report):
        baseline = synthetic_report(names=("a/x", "a/old"))
        current = synthetic_report(names=("a/x", "a/new"))
        comparison = compare_reports(baseline, current)
        assert [d.name for d in comparison.deltas] == ["a/x"]
        assert comparison.only_in_baseline == ("a/old",)
        assert comparison.only_in_current == ("a/new",)
        assert not comparison.has_regressions

    def test_deltas_sorted_by_name(self, synthetic_report):
        baseline = synthetic_report(names=("b/z", "a/x", "a/y"))
        current = synthetic_report(names=("a/y", "b/z", "a/x"))
        comparison = compare_reports(baseline, current)
        assert [d.name for d in comparison.deltas] == ["a/x", "a/y", "b/z"]


class TestCompareCLI:
    def test_unmatched_scenarios_warn_and_skip_with_exit_zero(
        self, synthetic_report, tmp_path, capsys
    ):
        import json

        from repro.bench.cli import bench_main

        # The baseline knows one scenario the current run lacks (retired) and
        # lacks one the current run has (new) — both must warn, neither may
        # fail the gate.  A huge baseline best keeps the matched scenario
        # from ever regressing on a slow machine.
        baseline = synthetic_report(names=("reservoir/draw", "study/retired"))
        for entry in baseline["results"]:
            entry["best_seconds"] = 1000.0
        path = tmp_path / "BENCH_base.json"
        path.write_text(json.dumps(baseline))
        code = bench_main(
            [
                "--scenario", "reservoir/draw",
                "--scenario", "reservoir/ingest",
                "--repeats", "1",
                "--warmup", "0",
                "--compare", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "warning: study/retired only in baseline" in out
        assert "warning: reservoir/ingest only in current report" in out
        assert "no regressions" in out


class TestFormatting:
    def test_table_names_regressions(self, synthetic_report):
        baseline = with_best(synthetic_report(), "a/x", 0.010)
        current = with_best(synthetic_report(), "a/x", 0.100)
        comparison = compare_reports(baseline, current, threshold_pct=15.0)
        text = format_comparison(comparison, baseline_label="BENCH_base.json")
        assert "REGRESSED" in text
        assert "REGRESSION:" in text
        assert "BENCH_base.json" in text

    def test_clean_table_reports_no_regressions(self, synthetic_report):
        comparison = compare_reports(synthetic_report(), synthetic_report())
        text = format_comparison(comparison)
        assert "no regressions" in text
