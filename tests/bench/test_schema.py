"""Schema contract of the BENCH report: round-trip, validation failures."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    load_report,
    run_scenarios,
    validate_report,
    write_report,
)


class TestValidation:
    def test_valid_report_passes_unchanged(self, synthetic_report):
        report = synthetic_report()
        assert validate_report(report) is report

    def test_wrong_schema_version_rejected(self, synthetic_report):
        report = synthetic_report()
        report["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_report(report)

    @pytest.mark.parametrize("key", ["env", "settings", "results", "created_unix"])
    def test_missing_top_level_key_rejected(self, synthetic_report, key):
        report = synthetic_report()
        del report[key]
        with pytest.raises(BenchSchemaError, match=key):
            validate_report(report)

    def test_missing_result_key_rejected(self, synthetic_report):
        report = synthetic_report()
        del report["results"][1]["best_seconds"]
        with pytest.raises(BenchSchemaError, match=r"results\[1\].*best_seconds"):
            validate_report(report)

    def test_duplicate_scenario_names_rejected(self, synthetic_report):
        report = synthetic_report(names=("a/x", "a/x"))
        with pytest.raises(BenchSchemaError, match="duplicated"):
            validate_report(report)

    def test_empty_results_rejected(self, synthetic_report):
        report = synthetic_report()
        report["results"] = []
        with pytest.raises(BenchSchemaError, match="at least one"):
            validate_report(report)

    def test_wall_times_must_match_repeats(self, synthetic_report):
        report = synthetic_report()
        report["results"][0]["wall_times"] = [0.02]
        with pytest.raises(BenchSchemaError, match="wall_times"):
            validate_report(report)

    def test_non_positive_timing_rejected(self, synthetic_report):
        report = synthetic_report()
        report["results"][0]["wall_times"] = [0.02, 0.0]
        with pytest.raises(BenchSchemaError, match="positive"):
            validate_report(report)

    def test_missing_env_key_rejected(self, synthetic_report):
        report = synthetic_report()
        del report["env"]["cpu_count"]
        with pytest.raises(BenchSchemaError, match="cpu_count"):
            validate_report(report)


class TestRoundTrip:
    def test_write_load_round_trip(self, synthetic_report, tmp_path):
        report = synthetic_report()
        path = write_report(report, tmp_path / "sub" / "BENCH.json")
        assert path.exists()
        assert load_report(path) == report

    def test_write_rejects_invalid(self, synthetic_report, tmp_path):
        report = synthetic_report()
        report["results"] = []
        with pytest.raises(BenchSchemaError):
            write_report(report, tmp_path / "BENCH.json")

    def test_load_rejects_tampered_file(self, synthetic_report, tmp_path):
        path = write_report(synthetic_report(), tmp_path / "BENCH.json")
        tampered = json.loads(path.read_text())
        del tampered["env"]
        path.write_text(json.dumps(tampered))
        with pytest.raises(BenchSchemaError):
            load_report(path)


class TestRealRun:
    def test_tiny_real_run_is_schema_valid(self, tmp_path):
        """One real scenario through the runner produces a valid report."""
        report = run_scenarios(names=["reservoir/draw"], repeats=1, warmup=0)
        validate_report(report)
        path = write_report(report, tmp_path / "BENCH_real.json")
        loaded = load_report(path)
        (entry,) = loaded["results"]
        assert entry["name"] == "reservoir/draw"
        assert entry["units_per_second"] > 0
