"""Scenario-selection determinism and the bench CLI exit-code contract."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    REGRESSION_EXIT_CODE,
    load_report,
    register_scenario,
    run_scenarios,
    scenario_groups,
    scenario_names,
    select_scenarios,
    write_report,
)
from repro.cli import main as cli_main


class TestSelectionDeterminism:
    def test_full_selection_is_sorted_and_stable(self):
        first = [s.name for s in select_scenarios()]
        second = [s.name for s in select_scenarios()]
        assert first == second == sorted(first)
        assert first == scenario_names()

    def test_selection_order_is_independent_of_request_order(self):
        a = [s.name for s in select_scenarios(names=["reservoir/draw", "nn/forward"])]
        b = [s.name for s in select_scenarios(names=["nn/forward", "reservoir/draw"])]
        assert a == b == ["nn/forward", "reservoir/draw"]

    def test_group_selection_expands_every_member(self):
        selected = {s.name for s in select_scenarios(groups=["reservoir"])}
        assert selected == {n for n in scenario_names() if n.startswith("reservoir/")}

    def test_groups_and_names_union_without_duplicates(self):
        selected = [
            s.name
            for s in select_scenarios(names=["reservoir/draw"], groups=["reservoir"])
        ]
        assert selected == sorted(set(selected))

    def test_unknown_scenario_and_group_raise(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            select_scenarios(names=["nope/nothing"])
        with pytest.raises(KeyError, match="unknown group"):
            select_scenarios(groups=["nope"])

    def test_expected_groups_are_registered(self):
        assert {"solver", "nn", "reservoir", "checkpoint", "session", "study"} <= set(
            scenario_groups()
        )

    def test_every_workload_has_a_solver_scenario(self):
        from repro.api.registry import workload_names

        names = set(scenario_names())
        for workload in workload_names():
            assert f"solver/{workload}" in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("reservoir/draw", units="x", description="dup")(lambda: None)
        with pytest.raises(ValueError, match="group/name"):
            register_scenario("nogroup", units="x", description="bad")(lambda: None)


class TestBenchCli:
    FAST = ["--scenario", "reservoir/draw", "--repeats", "1", "--warmup", "0"]

    def test_list_scenarios_exits_zero(self, capsys):
        assert cli_main(["bench", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "reservoir/draw" in out and "solver/heat2d" in out

    def test_out_writes_schema_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert cli_main(["bench", *self.FAST, "--out", str(out)]) == 0
        report = load_report(out)
        assert [e["name"] for e in report["results"]] == ["reservoir/draw"]
        assert report["settings"] == {"repeats": 1, "warmup": 0}

    def test_unknown_scenario_exits_two(self, capsys):
        assert cli_main(["bench", "--scenario", "nope/nothing"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_compare_ok_exits_zero(self, tmp_path, capsys):
        baseline = run_scenarios(names=["reservoir/draw"], repeats=1, warmup=0)
        # A generous baseline (10x slower) can never flag a regression.
        for entry in baseline["results"]:
            entry["best_seconds"] *= 10.0
            entry["wall_times"] = [entry["best_seconds"]]
        path = write_report(baseline, tmp_path / "baseline.json")
        assert cli_main(["bench", *self.FAST, "--compare", str(path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_flags_injected_slowdown(self, tmp_path, capsys):
        """A baseline doctored 100x faster makes the current run 'regress'."""
        baseline = run_scenarios(names=["reservoir/draw"], repeats=1, warmup=0)
        for entry in baseline["results"]:
            entry["best_seconds"] /= 100.0
            entry["wall_times"] = [entry["best_seconds"]]
        path = write_report(baseline, tmp_path / "baseline.json")
        code = cli_main(
            ["bench", *self.FAST, "--compare", str(path), "--threshold", "50"]
        )
        assert code == REGRESSION_EXIT_CODE
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_rejects_wrong_schema_version(self, tmp_path):
        baseline = run_scenarios(names=["reservoir/draw"], repeats=1, warmup=0)
        baseline["schema_version"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(baseline))
        from repro.bench import BenchSchemaError

        with pytest.raises(BenchSchemaError):
            cli_main(["bench", *self.FAST, "--compare", str(path)])
