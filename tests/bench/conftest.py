"""Fixtures for the benchmark-harness tests: synthetic schema-valid reports."""

from __future__ import annotations

import pytest

from repro.bench import BENCH_SCHEMA_VERSION


def _synthetic_report(names=("a/x", "a/y")) -> dict:
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": 1_700_000_000.0,
        "env": {
            "python": "3.11.0",
            "numpy": "2.0.0",
            "scipy": "1.14.0",
            "platform": "test",
            "machine": "x86_64",
            "cpu_count": 1,
            "git_sha": None,
        },
        "settings": {"repeats": 2, "warmup": 0},
        "results": [
            {
                "name": name,
                "group": name.split("/")[0],
                "units": "steps",
                "n_units": 100,
                "repeats": 2,
                "warmup": 0,
                "wall_times": [0.02, 0.03],
                "best_seconds": 0.02,
                "mean_seconds": 0.025,
                "units_per_second": 5000.0,
            }
            for name in names
        ],
    }


@pytest.fixture
def synthetic_report():
    """Factory of minimal schema-valid reports (``synthetic_report(names=…)``)."""
    return _synthetic_report
