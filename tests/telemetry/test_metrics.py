"""Unit tests for the metrics registry and Prometheus exposition."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)
from repro.telemetry import counter_delta


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(3)
        assert registry.counter_values()["repro_test_total"] == 4.0

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_labeled_children_are_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_transport_bytes_total")
        data = family.labels(channel="data")
        assert family.labels(channel="data") is data
        assert family.labels(channel="jobs") is not data

    def test_label_order_is_canonical(self):
        family = MetricsRegistry().counter("x_total")
        assert family.labels(a=1, b=2) is family.labels(b=2, a=1)

    def test_untouched_default_series_not_rendered(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", help="never incremented")
        text = registry.render_prometheus()
        assert "# TYPE quiet_total counter" in text
        assert "\nquiet_total " not in text

    def test_counter_values_excludes_other_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.gauge("g").set(7)
        registry.histogram("h_seconds").observe(0.2)
        assert set(registry.counter_values()) == {"c_total"}


class TestGauge:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_queue_depth")
        gauge.set(5)
        gauge.inc(2)
        assert registry.values()["repro_queue_depth"] == 7.0

    def test_zero_gauge_still_rendered(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(0)
        assert "\ndepth 0" in "\n" + registry.render_prometheus()


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3" in text

    def test_default_buckets_are_latency_shaped(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_values_exposes_count_and_sum(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds").observe(0.25)
        values = registry.values()
        assert values["h_seconds_count"] == 1.0
        assert values["h_seconds_sum"] == 0.25


class TestRegistry:
    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("thing_total")

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        assert [f.name for f in registry.families()] == ["a_total", "z_total"]

    def test_render_prometheus_shape(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_msgs_total", help="messages moved")
        family.labels(channel="data").inc(10)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_msgs_total messages moved" in lines
        assert "# TYPE repro_msgs_total counter" in lines
        assert 'repro_msgs_total{channel="data"} 10' in lines
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestCounterDelta:
    def test_counts_from_zero_for_new_series(self):
        assert counter_delta({}, {"a_total": 3.0}) == {"a_total": 3.0}

    def test_zero_deltas_dropped(self):
        before = {"a_total": 3.0, "b_total": 1.0}
        after = {"a_total": 3.0, "b_total": 4.0}
        assert counter_delta(before, after) == {"b_total": 3.0}

    def test_keys_filter(self):
        after = {"a_total": 1.0, "b_total": 2.0}
        assert counter_delta({}, after, keys=["b_total", "missing"]) == {"b_total": 2.0}


class TestNullSeries:
    def test_all_updates_are_noops(self):
        NULL_COUNTER.inc()
        NULL_GAUGE.set(10)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.labels(channel="data") is NULL_COUNTER
