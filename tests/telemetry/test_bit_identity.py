"""The tentpole guarantee: telemetry observes, it never participates.

A session run with metrics + tracing fully enabled must produce outputs
bit-identical to the same run with telemetry off, while the registry and the
trace file fill with the expected observations.  Per-run counter attribution
through the study executor rides the same runs.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.api.session import TrainingSession
from repro.workflow.study import StudyRunner

GRID = [{"method": "breed"}, {"method": "random"}]


class TestSessionBitIdentity:
    def test_fully_enabled_run_is_bit_identical(self, tiny_run_config, tmp_path):
        reference = TrainingSession(tiny_run_config).run()

        telemetry.configure(metrics=True, trace_dir=tmp_path)
        observed = TrainingSession(tiny_run_config).run()

        np.testing.assert_array_equal(
            reference.executed_parameters, observed.executed_parameters
        )
        assert reference.history.train_losses == observed.history.train_losses
        assert reference.history.validation_losses == observed.history.validation_losses
        assert reference.final_validation_loss == observed.final_validation_loss
        assert reference.n_ticks == observed.n_ticks
        assert reference.transport_bytes == observed.transport_bytes

    def test_enabled_run_populates_registry_and_trace(self, tiny_run_config, tmp_path):
        telemetry.configure(metrics=True, trace_dir=tmp_path)
        result = TrainingSession(tiny_run_config).run()

        counters = telemetry.metrics().counter_values()
        assert counters["repro_session_ticks_total"] == float(result.n_ticks)
        assert counters["repro_session_train_iterations_total"] == float(
            result.history.train_iterations[-1]
        )
        # Periodic validations plus the final one (history records both).
        assert counters["repro_session_validations_total"] == float(
            len(result.history.validation_losses)
        )
        assert counters["repro_solver_steps_total"] > 0
        assert counters["repro_reservoir_ingest_total"] > 0
        assert counters['repro_transport_bytes_total{channel="data"}'] == float(
            result.transport_bytes
        )

        text = telemetry.metrics().render_prometheus()
        assert "# TYPE repro_session_ticks_total counter" in text

        trace_files = list(tmp_path.glob("trace-*.jsonl"))
        assert len(trace_files) == 1
        names = {line.split('"')[3] for line in trace_files[0].read_text().splitlines()}
        assert {"session.tick", "session.final_validation", "server.validation"} <= names


class TestPerRunAttribution:
    def test_serial_runs_carry_counter_deltas(self, tiny_run_config):
        telemetry.configure(metrics=True)
        results = StudyRunner(base_config=tiny_run_config, study_name="tele").run_all(GRID)
        for run in results:
            assert run.telemetry["repro_session_ticks_total"] > 0
            assert run.telemetry["_worker_pid"] > 0
        summary = results.telemetry_summary()
        assert "_worker_pid" not in summary
        assert summary["repro_session_ticks_total"] == sum(
            run.telemetry["repro_session_ticks_total"] for run in results
        )

    def test_disabled_runs_carry_no_telemetry(self, tiny_run_config):
        results = StudyRunner(base_config=tiny_run_config, study_name="off").run_all(GRID)
        assert all(run.telemetry == {} for run in results)
        assert results.telemetry_summary() == {}

    def test_process_backend_merge_matches_serial(self, tiny_run_config):
        telemetry.configure(metrics=True)
        serial = StudyRunner(base_config=tiny_run_config, study_name="tele").run_all(GRID)
        process = StudyRunner(
            base_config=tiny_run_config, study_name="tele", backend="process", max_workers=2
        ).run_all(GRID)
        # Deterministic merge: identical runs produce identical per-run counter
        # deltas whichever process executed them (worker pid aside).
        for serial_run, process_run in zip(serial, process):
            stripped_serial = {
                k: v for k, v in serial_run.telemetry.items() if not k.startswith("_")
            }
            stripped_process = {
                k: v for k, v in process_run.telemetry.items() if not k.startswith("_")
            }
            assert stripped_serial == stripped_process
        assert serial.telemetry_summary() == process.telemetry_summary()
