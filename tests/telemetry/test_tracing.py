"""Unit tests for the JSONL span tracer and the chrome://tracing converter."""

from __future__ import annotations

import json
import os

from repro.telemetry.tracing import NULL_TRACER, Tracer, to_chrome


def _events(tracer: Tracer) -> list:
    tracer.flush()
    return [json.loads(line) for line in tracer.path.read_text().splitlines() if line]


class TestNullTracer:
    def test_disabled_and_reusable(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")
        with NULL_TRACER.span("x"):
            assert NULL_TRACER.depth == 0
        NULL_TRACER.instant("nothing")
        NULL_TRACER.flush()
        NULL_TRACER.close()


class TestTracer:
    def test_writes_per_pid_jsonl(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("tick"):
            pass
        tracer.close()
        assert tracer.path == tmp_path / f"trace-{os.getpid()}.jsonl"
        assert tracer.path.exists()

    def test_first_event_is_process_name_metadata(self, tmp_path):
        tracer = Tracer(tmp_path, process_name="unit test")
        meta = _events(tracer)[0]
        assert meta["ph"] == "M"
        assert meta["name"] == "process_name"
        assert meta["args"] == {"name": "unit test"}

    def test_complete_event_shape(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("session.tick", cat="session"):
            pass
        event = _events(tracer)[-1]
        assert event["ph"] == "X"
        assert event["name"] == "session.tick"
        assert event["cat"] == "session"
        assert event["pid"] == os.getpid()
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0

    def test_span_args_serialized(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("checkpoint.save", cat="checkpoint", tick=7):
            pass
        event = _events(tracer)[-1]
        assert event["args"] == {"tick": 7}

    def test_nesting_depth_and_containment(self, tmp_path):
        tracer = Tracer(tmp_path)
        assert tracer.depth == 0
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0
        events = {e["name"]: e for e in _events(tracer) if e["ph"] == "X"}
        inner, outer = events["inner"], events["outer"]
        # The child's window lies inside the parent's — the property the
        # chrome://tracing viewer uses to reconstruct the hierarchy.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_instant_event(self, tmp_path):
        tracer = Tracer(tmp_path)
        tracer.instant("server.steering", cat="steering", iteration=40)
        event = _events(tracer)[-1]
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"] == {"iteration": 40}

    def test_span_closed_on_exception(self, tmp_path):
        tracer = Tracer(tmp_path)
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.depth == 0
        assert any(e["name"] == "failing" for e in _events(tracer))

    def test_every_line_is_valid_json(self, tmp_path):
        tracer = Tracer(tmp_path)
        for i in range(20):
            with tracer.span(f"span-{i}"):
                pass
        tracer.flush()
        for line in tracer.path.read_text().splitlines():
            json.loads(line)


class TestToChrome:
    def test_wraps_trace_events(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("a"):
            pass
        tracer.close()
        out = to_chrome(tracer.path)
        assert out.suffix == ".json"
        payload = json.loads(out.read_text())
        assert {e["name"] for e in payload["traceEvents"]} >= {"a", "process_name"}

    def test_tolerates_torn_final_line(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("kept"):
            pass
        tracer.close()
        with tracer.path.open("a") as stream:
            stream.write('{"name": "torn", "ph":')  # crashed writer mid-line
        payload = json.loads(to_chrome(tracer.path).read_text())
        names = [e["name"] for e in payload["traceEvents"]]
        assert "kept" in names
        assert "torn" not in names
