"""Telemetry tests toggle process-wide state; always restore the default."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def telemetry_reset():
    yield
    telemetry.disable()
