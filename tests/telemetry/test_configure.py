"""Process-wide telemetry state: configure/disable, env mirroring, null paths."""

from __future__ import annotations

import os

from repro import telemetry


class TestDisabledDefaults:
    def test_disabled_by_default(self):
        assert telemetry.metrics_enabled() is False
        assert telemetry.tracing_enabled() is False
        assert telemetry.tracer() is telemetry.NULL_TRACER

    def test_metrics_returns_throwaway_registry_when_disabled(self):
        # Instrumented constructors can always register; nothing accumulates
        # across calls because each call hands out a fresh registry.
        telemetry.metrics().counter("x_total").inc()
        assert telemetry.metrics().counter_values() == {}

    def test_worker_env_empty_when_disabled(self):
        assert telemetry.worker_env() == {}


class TestConfigure:
    def test_enable_metrics_installs_shared_registry(self):
        telemetry.configure(metrics=True)
        assert telemetry.metrics_enabled()
        telemetry.metrics().counter("shared_total").inc()
        assert telemetry.metrics().counter_values()["shared_total"] == 1.0

    def test_enable_metrics_exports_env(self):
        telemetry.configure(metrics=True)
        assert os.environ[telemetry.METRICS_ENV] == "1"
        telemetry.configure(metrics=False)
        assert telemetry.METRICS_ENV not in os.environ

    def test_metrics_none_leaves_state_untouched(self):
        telemetry.configure(metrics=True)
        registry = telemetry.metrics()
        telemetry.configure(metrics=None)
        assert telemetry.metrics() is registry

    def test_custom_registry_installed(self):
        registry = telemetry.MetricsRegistry()
        telemetry.configure(registry=registry)
        assert telemetry.metrics() is registry

    def test_trace_dir_installs_tracer_and_exports_env(self, tmp_path):
        telemetry.configure(trace_dir=tmp_path, process_name="test proc")
        assert telemetry.tracing_enabled()
        assert os.environ[telemetry.TRACE_DIR_ENV] == str(tmp_path)
        with telemetry.tracer().span("probe"):
            pass
        telemetry.tracer().flush()
        assert list(tmp_path.glob("trace-*.jsonl"))

    def test_worker_env_mirrors_enabled_state(self, tmp_path):
        telemetry.configure(metrics=True, trace_dir=tmp_path)
        env = telemetry.worker_env()
        assert env[telemetry.METRICS_ENV] == "1"
        assert env[telemetry.TRACE_DIR_ENV] == str(tmp_path)

    def test_disable_resets_everything(self, tmp_path):
        telemetry.configure(metrics=True, trace_dir=tmp_path)
        telemetry.disable()
        assert not telemetry.metrics_enabled()
        assert not telemetry.tracing_enabled()
        assert telemetry.METRICS_ENV not in os.environ
        assert telemetry.TRACE_DIR_ENV not in os.environ


class TestConfigureFromEnv:
    def test_adopts_environment_switches(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.METRICS_ENV, "1")
        monkeypatch.setenv(telemetry.TRACE_DIR_ENV, str(tmp_path))
        telemetry._configure_from_env()
        assert telemetry.metrics_enabled()
        assert telemetry.tracing_enabled()

    def test_zero_and_empty_mean_disabled(self, monkeypatch):
        monkeypatch.setenv(telemetry.METRICS_ENV, "0")
        monkeypatch.delenv(telemetry.TRACE_DIR_ENV, raising=False)
        telemetry._configure_from_env()
        assert not telemetry.metrics_enabled()
        assert not telemetry.tracing_enabled()
