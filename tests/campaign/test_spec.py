"""Campaign spec parsing, validation, digests and the deterministic schedule."""

from __future__ import annotations

import pytest

from repro.campaign.spec import (
    CampaignCycleError,
    CampaignSpec,
    CampaignSpecError,
    NodeSpec,
    TopK,
    campaign_digest,
    resolve_configurations,
    topological_order,
)
from repro.workflow.results import RunResult, StudyResults

from topologies import chain_spec, diamond_spec, tiny_config_dict


class TestParsing:
    def test_round_trips_through_to_dict(self, make_campaign):
        spec = CampaignSpec.from_dict(make_campaign("diamond"))
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_rejects_unknown_campaign_keys(self):
        with pytest.raises(CampaignSpecError, match="unknown campaign key"):
            CampaignSpec.from_dict(dict(chain_spec(), runner="x"))

    def test_rejects_unknown_node_keys(self):
        payload = chain_spec()
        payload["nodes"][0]["retries"] = 3
        with pytest.raises(CampaignSpecError, match="unknown node key"):
            CampaignSpec.from_dict(payload)

    def test_rejects_missing_name(self):
        with pytest.raises(CampaignSpecError, match="non-empty 'name'"):
            CampaignSpec.from_dict(dict(chain_spec(), name=""))

    def test_rejects_empty_node_list(self):
        with pytest.raises(CampaignSpecError, match="at least one node"):
            CampaignSpec.from_dict(dict(chain_spec(), nodes=[]))

    def test_rejects_duplicate_node_names(self):
        payload = chain_spec()
        payload["nodes"].append({"name": "sweep"})
        with pytest.raises(CampaignSpecError, match="duplicate node name"):
            CampaignSpec.from_dict(payload)

    def test_rejects_unknown_dependency(self):
        payload = chain_spec()
        payload["nodes"][2]["depends_on"] = ["nope"]
        with pytest.raises(CampaignSpecError, match="unknown node 'nope'"):
            CampaignSpec.from_dict(payload)

    def test_rejects_self_dependency(self):
        payload = chain_spec()
        payload["nodes"][0]["depends_on"] = ["sweep"]
        with pytest.raises(CampaignSpecError, match="depends on itself"):
            CampaignSpec.from_dict(payload)

    def test_rejects_selector_outside_depends_on(self):
        payload = chain_spec()
        payload["nodes"][2]["select"] = {
            "type": "top_k", "node": "sweep", "metric": "final_validation_loss",
        }
        with pytest.raises(CampaignSpecError, match="not in its depends_on"):
            CampaignSpec.from_dict(payload)

    def test_rejects_bad_selector(self):
        with pytest.raises(CampaignSpecError, match="unknown selector type"):
            TopK.from_dict({"type": "best", "node": "a", "metric": "m"})
        with pytest.raises(CampaignSpecError, match="k must be >= 1"):
            TopK.from_dict({"node": "a", "metric": "m", "k": 0})
        with pytest.raises(CampaignSpecError, match="requires 'metric'"):
            TopK.from_dict({"node": "a"})

    def test_rejects_bad_backend_and_config(self):
        with pytest.raises(CampaignSpecError, match="unknown backend"):
            CampaignSpec.from_dict(dict(chain_spec(), backend="mpi"))
        with pytest.raises(CampaignSpecError, match="invalid base config"):
            CampaignSpec.from_dict(dict(chain_spec(), config={"no_such_field": 1}))


class TestDigest:
    def test_stable_across_key_order(self):
        a = campaign_digest(CampaignSpec.from_dict(chain_spec()))
        payload = chain_spec()
        payload["nodes"][0]["configurations"] = [dict(reversed(list(c.items())))
                                                 for c in payload["nodes"][0]["configurations"]]
        b = campaign_digest(CampaignSpec.from_dict(payload))
        assert a == b

    def test_ignores_execution_knobs(self):
        base = campaign_digest(CampaignSpec.from_dict(chain_spec()))
        tweaked = campaign_digest(
            CampaignSpec.from_dict(chain_spec(backend="shm", max_workers=4, checkpoint_every=9))
        )
        assert base == tweaked

    def test_changes_with_structure(self):
        base = campaign_digest(CampaignSpec.from_dict(chain_spec()))
        payload = chain_spec()
        payload["nodes"][0]["configurations"].append({"sigma": 0.9})
        assert campaign_digest(CampaignSpec.from_dict(payload)) != base
        assert campaign_digest(CampaignSpec.from_dict(diamond_spec())) != base


class TestSchedule:
    def test_declaration_order_among_ready_nodes(self, make_campaign):
        spec = CampaignSpec.from_dict(make_campaign("fanout"))
        assert [n.name for n in topological_order(spec)] == ["root", "f1", "f2", "f3"]

    def test_dependencies_precede_dependents(self, make_campaign):
        spec = CampaignSpec.from_dict(make_campaign("diamond"))
        order = [n.name for n in topological_order(spec)]
        for node in spec.nodes:
            for dep in node.depends_on:
                assert order.index(dep) < order.index(node.name)

    def test_cycle_raises_named_error(self):
        payload = {
            "name": "loop",
            "config": tiny_config_dict(),
            "nodes": [
                {"name": "a", "depends_on": ["c"]},
                {"name": "b", "depends_on": ["a"]},
                {"name": "c", "depends_on": ["b"]},
            ],
        }
        with pytest.raises(CampaignCycleError) as excinfo:
            topological_order(CampaignSpec.from_dict(payload))
        assert set(excinfo.value.cycle) == {"a", "b", "c"}
        assert "->" in str(excinfo.value)

    def test_estimated_runs(self, make_campaign):
        assert CampaignSpec.from_dict(make_campaign("chain")).estimated_runs() == 4
        assert CampaignSpec.from_dict(make_campaign("diamond")).estimated_runs() == 5
        assert CampaignSpec.from_dict(make_campaign("fanout")).estimated_runs() == 4


def _fake_results(metric_by_name):
    results = StudyResults(study="up")
    for name, value in metric_by_name.items():
        results.add(RunResult(name=name, config={"sigma": float(name[-1])},
                              metrics={"loss": value}))
    return results


class TestResolveConfigurations:
    def test_literals_only(self):
        node = NodeSpec(name="n", configurations=({"sigma": 0.1},))
        assert resolve_configurations(node, {}) == [{"sigma": 0.1}]

    def test_no_literals_means_one_base_run(self):
        assert resolve_configurations(NodeSpec(name="n"), {}) == [{}]

    def test_top_k_selects_best_with_stable_tiebreak(self):
        upstream = {"up": _fake_results({"up:1": 3.0, "up:2": 1.0, "up:3": 1.0})}
        node = NodeSpec(
            name="n", depends_on=("up",),
            select=TopK(node="up", metric="loss", k=2),
        )
        resolved = resolve_configurations(node, upstream)
        # ties broken by run name: up:2 before up:3, both beat up:1
        assert [c["_selected_from"] for c in resolved] == ["up:2", "up:3"]

    def test_maximize_flips_order(self):
        upstream = {"up": _fake_results({"up:1": 3.0, "up:2": 1.0})}
        node = NodeSpec(
            name="n", depends_on=("up",),
            select=TopK(node="up", metric="loss", k=1, minimize=False),
        )
        assert resolve_configurations(node, upstream)[0]["_selected_from"] == "up:1"

    def test_selector_overrides_and_cross_product(self):
        upstream = {"up": _fake_results({"up:1": 1.0})}
        node = NodeSpec(
            name="n", depends_on=("up",),
            configurations=({"hidden_size": 8}, {"hidden_size": 16}),
            select=TopK(node="up", metric="loss", k=1, overrides={"max_iterations": 9}),
        )
        resolved = resolve_configurations(node, upstream)
        assert len(resolved) == 2
        assert all(c["max_iterations"] == 9 and c["sigma"] == 1.0 for c in resolved)
        assert sorted(c["hidden_size"] for c in resolved) == [8, 16]

    def test_missing_metric_is_an_error(self):
        upstream = {"up": _fake_results({"up:1": 1.0})}
        node = NodeSpec(
            name="n", depends_on=("up",),
            select=TopK(node="up", metric="nope", k=1),
        )
        with pytest.raises(CampaignSpecError, match="lack metric"):
            resolve_configurations(node, upstream)

    def test_missing_upstream_results_is_an_error(self):
        node = NodeSpec(name="n", depends_on=("up",),
                        select=TopK(node="up", metric="loss"))
        with pytest.raises(CampaignSpecError, match="has no results"):
            resolve_configurations(node, {})
