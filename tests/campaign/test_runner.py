"""CampaignRunner behaviour: cache accounting, resume, failure domains, retry."""

from __future__ import annotations

import pytest

from faults import TOKEN_ENV, CrashAt, InjectedFault, arm_file
from repro import telemetry
from repro.campaign import (
    CampaignManifest,
    CampaignResumeError,
    CampaignRunner,
    CampaignSpec,
)
from repro.telemetry.metrics import MetricsRegistry, counter_delta
from repro.workflow.executor import TIMING_METRICS
from topologies import TOPOLOGIES


def run_campaign(payload, root, **kwargs):
    return CampaignRunner(CampaignSpec.from_dict(payload), root, **kwargs)


def comparable(run):
    """A run's identity-bearing payload (everything but wall-clock noise)."""
    return {
        "workload": run.workload,
        "seed": run.seed,
        "digest": run.digest,
        "metrics": {k: v for k, v in run.metrics.items() if k not in TIMING_METRICS},
        "series": run.series,
    }


class TestCacheAccounting:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_shared_runs_execute_exactly_once(self, topology, tmp_path):
        builder, executed, hits = TOPOLOGIES[topology]
        runner = run_campaign(builder(), tmp_path / "camp")
        outcome = runner.run()

        assert outcome.ok
        assert set(outcome.states.values()) == {"done"}
        assert outcome.runs_executed == executed
        assert outcome.cache_hits == hits
        # the manifest's own ledger proves no digest was executed twice
        counts = CampaignManifest(tmp_path / "camp" / "manifest.jsonl").executed_run_counts()
        assert counts and all(count == 1 for count in counts.values())
        assert len(counts) == executed

    def test_spliced_run_is_bit_identical_to_its_source(self, tmp_path):
        # fanout: f2 duplicates f1's configuration and must inherit its payload
        outcome = run_campaign(TOPOLOGIES["fanout"][0](), tmp_path / "camp").run()
        source = outcome.results["f1"].runs[0]
        spliced = outcome.results["f2"].runs[0]
        assert spliced.name == "f2:0"  # renamed into the consuming node
        assert comparable(spliced) == comparable(source)

    def test_counters_track_cache_hits_and_executions(self, tmp_path):
        registry = MetricsRegistry()
        telemetry.configure(registry=registry, export_env=False)
        try:
            before = registry.counter_values()
            builder, executed, hits = TOPOLOGIES["diamond"]
            run_campaign(builder(), tmp_path / "camp").run()
            delta = counter_delta(before, registry.counter_values())
        finally:
            telemetry.disable(export_env=False)
        assert delta.get("repro_campaign_cache_hits_total") == hits
        assert delta.get("repro_campaign_runs_executed_total") == executed

    def test_on_result_sees_every_run_exactly_once(self, tmp_path):
        seen = []
        builder, executed, hits = TOPOLOGIES["chain"]
        run_campaign(builder(), tmp_path / "camp", on_result=lambda r: seen.append(r.name)).run()
        assert len(seen) == executed + hits
        assert len(set(seen)) == len(seen)


class TestResume:
    def test_resume_splices_everything_and_reexecutes_nothing(self, make_campaign, tmp_path):
        first = run_campaign(make_campaign("diamond"), tmp_path / "camp").run()
        again = run_campaign(make_campaign("diamond"), tmp_path / "camp").run(resume=True)

        assert again.ok
        assert again.runs_executed == 0
        assert again.cache_hits == 0
        assert again.runs_resumed == sum(len(r.runs) for r in first.results.values())
        for node, results in first.results.items():
            assert [comparable(r) for r in again.results[node].runs] == [
                comparable(r) for r in results.runs
            ]

    def test_existing_manifest_without_resume_is_refused(self, make_campaign, tmp_path):
        run_campaign(make_campaign("fanout"), tmp_path / "camp").run()
        with pytest.raises(CampaignResumeError, match="--resume"):
            run_campaign(make_campaign("fanout"), tmp_path / "camp").run()

    def test_resume_with_different_spec_is_refused(self, make_campaign, tmp_path):
        run_campaign(make_campaign("fanout"), tmp_path / "camp").run()
        changed = make_campaign("fanout")
        changed["nodes"][0]["configurations"] = [{"sigma": 0.9}]
        with pytest.raises(CampaignResumeError, match="digest"):
            run_campaign(changed, tmp_path / "camp").run(resume=True)


class TestFailureDomains:
    def test_failed_node_blocks_descendants_only(self, make_campaign, tmp_path, monkeypatch):
        CrashAt("left", 0, mode="raise").install(monkeypatch)
        outcome = run_campaign(make_campaign("diamond"), tmp_path / "camp").run()

        assert not outcome.ok
        assert outcome.states == {
            "src": "done", "left": "failed", "right": "done", "join": "skipped",
        }
        events = CampaignManifest(tmp_path / "camp" / "manifest.jsonl").load()
        skipped = [e for e in events if e["event"] == "node_skipped"]
        assert [e["node"] for e in skipped] == ["join"]
        assert skipped[0]["blocked_by"] == ["left"]
        failed = [e for e in events if e["event"] == "node_failed"]
        assert failed and "InjectedFault" in failed[-1]["error"]

    def test_retry_recovers_from_one_shot_fault(self, make_campaign, tmp_path, monkeypatch):
        payload = make_campaign("diamond")
        for node in payload["nodes"]:
            if node["name"] == "left":
                node["max_retries"] = 1
        CrashAt("left", 1, mode="raise").install(monkeypatch, arm_file(tmp_path))
        outcome = run_campaign(payload, tmp_path / "camp").run()

        assert outcome.ok
        events = CampaignManifest(tmp_path / "camp" / "manifest.jsonl").load()
        failed = [e for e in events if e["event"] == "node_failed"]
        assert [e["attempt"] for e in failed] == [1]
        # the run finished before the crash was spliced, not re-executed
        counts = CampaignManifest(tmp_path / "camp" / "manifest.jsonl").executed_run_counts()
        assert all(count == 1 for count in counts.values())

    def test_propagate_reraises_instead_of_absorbing(self, make_campaign, tmp_path, monkeypatch):
        CrashAt("left", 0, mode="raise").install(monkeypatch)
        runner = run_campaign(
            make_campaign("diamond"), tmp_path / "camp", propagate=(InjectedFault,)
        )
        with pytest.raises(InjectedFault):
            runner.run()

    def test_failed_campaign_resumes_only_the_failed_subgraph(
        self, make_campaign, tmp_path, monkeypatch
    ):
        CrashAt("left", 0, mode="raise").install(monkeypatch)
        first = run_campaign(make_campaign("diamond"), tmp_path / "camp").run()
        assert first.states["left"] == "failed"
        monkeypatch.delenv(TOKEN_ENV)

        again = run_campaign(make_campaign("diamond"), tmp_path / "camp").run(resume=True)
        assert again.ok
        assert again.runs_resumed == len(first.results["src"].runs) + len(
            first.results["right"].runs
        )
        # across both invocations no digest ever executed twice
        counts = CampaignManifest(tmp_path / "camp" / "manifest.jsonl").executed_run_counts()
        assert all(count == 1 for count in counts.values())
