"""Reusable deterministic fault injection for the resilience test matrix.

This is the *test-facing* half of the fault machinery; the engine-side hook
(:func:`repro.workflow.faults.maybe_inject` and its env-var protocol) lives
in ``src`` so process/shm workers inherit it through their environment and
:class:`~repro.workflow.faults.InjectedFault` unpickles across process
boundaries.

Three tools:

* :class:`CrashAt` — a picklable "crash when this node's run #N is reached"
  value object.  ``point="run"`` fires at the top of ``execute_spec`` in
  whichever process executes the run (the serial driver, or a process/shm
  worker); ``point="record"`` fires in the campaign driver right after the
  run's record is durable — the way to SIGKILL the orchestrator itself at a
  run boundary under any backend.
* :func:`run_campaign_cli` — drive ``repro campaign`` as a subprocess in its
  own session, optionally with a :class:`CrashAt` armed, and always reap the
  fallout (orphaned worker processes, leaked ``/dev/shm`` segments) before
  returning — a SIGKILLed shm driver cannot run its cleanup ``finally``.
* :func:`interrupt_after_runs` — the in-process service-test helper: trip a
  worker's stop event after N completed runs (replacing the ad-hoc
  ``record_run_finished`` wrapping the mid-job interruption tests used).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.workflow.faults import ARM_ENV, MODE_ENV, TOKEN_ENV, InjectedFault  # noqa: F401

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: exit status of a process that died from SIGKILL
SIGKILLED = -signal.SIGKILL


@dataclass(frozen=True)
class CrashAt:
    """Deterministic crash request: node ``node``, run ``run_index``.

    Picklable by construction (plain data), so it can cross into process/shm
    workers or be embedded in spawned-subprocess environments.  ``mode``
    selects the failure: ``"sigkill"`` kills the hosting process mid-flight
    (nothing flushes), ``"raise"`` raises :class:`InjectedFault` through the
    normal error paths (arm it with an arm file to make it one-shot, so a
    retry succeeds).
    """

    node: str
    run_index: int
    point: str = "run"
    mode: str = "sigkill"

    @property
    def run_name(self) -> str:
        return f"{self.node}:{self.run_index}"

    @property
    def token(self) -> str:
        return f"{self.point}:{self.run_name}"

    def env(self, arm_file: Optional[Path] = None) -> Dict[str, str]:
        """Environment variables arming this fault (see repro.workflow.faults)."""
        payload = {TOKEN_ENV: self.token, MODE_ENV: self.mode}
        if arm_file is not None:
            payload[ARM_ENV] = str(arm_file)
        return payload

    def install(self, monkeypatch, arm_file: Optional[Path] = None) -> None:
        """Arm the fault in *this* process (monkeypatch keeps it test-scoped)."""
        for key, value in self.env(arm_file).items():
            monkeypatch.setenv(key, value)


def arm_file(tmp_path: Path, name: str = "fault.arm") -> Path:
    """Create a one-shot arm file (consumed atomically by the first firing)."""
    path = tmp_path / name
    path.write_text("armed")
    return path


def reap_session(pgid: int, timeout: float = 5.0) -> List[str]:
    """Kill a dead driver's leftover process group and leaked shm segments.

    A SIGKILLed shm/process driver leaves workers blocked on a broken task
    queue and shared-memory segments it never unlinked.  Tests call this
    after every subprocess campaign invocation (crashing or not — it is a
    no-op for clean exits).  Returns the segment names that were reclaimed.
    """
    from repro.workflow.shm import orphaned_segments

    try:
        os.killpg(pgid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    reclaimed: List[str] = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        leaked = orphaned_segments()
        if not leaked:
            break
        for name in leaked:
            try:
                (Path("/dev/shm") / name).unlink()
                reclaimed.append(name)
            except (FileNotFoundError, PermissionError):
                pass
        time.sleep(0.05)
    return reclaimed


def run_campaign_cli(
    args: List[str],
    cwd: Path,
    fault: Optional[CrashAt] = None,
    fault_arm_file: Optional[Path] = None,
    timeout: float = 600.0,
) -> Tuple[int, str, str]:
    """Run ``python -m repro.cli campaign <args>`` in its own session.

    Returns ``(returncode, stdout, stderr)``; a ``sigkill``-mode fault shows
    up as ``returncode == SIGKILLED``.  The child gets a scrubbed fault
    environment unless ``fault`` is given, and its whole session (worker
    pools included) is reaped afterwards so crashed invocations cannot leak
    processes or ``/dev/shm`` segments into later tests.
    """
    env = os.environ.copy()
    for key in (TOKEN_ENV, MODE_ENV, ARM_ENV):
        env.pop(key, None)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if fault is not None:
        env.update(fault.env(fault_arm_file))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", *[str(a) for a in args]],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )
    try:
        stdout, stderr = process.communicate(timeout=timeout)
    finally:
        reap_session(process.pid)
    return process.returncode, stdout, stderr


def interrupt_after_runs(store, stop_event, n_runs: int = 1) -> None:
    """Trip ``stop_event`` once ``n_runs`` runs have finished on ``store``.

    Wraps ``store.record_run_finished`` — the worker's per-run bookkeeping —
    so the worker observes the stop request at the next run boundary, the
    exact interruption shape of a graceful service shutdown mid-job.
    """
    bookkeeping = store.record_run_finished
    remaining = [n_runs]

    def wrapped(job_id, name, metrics):
        bookkeeping(job_id, name, metrics)
        remaining[0] -= 1
        if remaining[0] <= 0:
            stop_event.set()

    store.record_run_finished = wrapped
