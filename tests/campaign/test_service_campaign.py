"""Campaign jobs through the study service: validation, dedupe, worker, HTTP."""

from __future__ import annotations

import json
import threading

import pytest

from faults import interrupt_after_runs
from repro.campaign import CampaignManifest, CampaignRunner, CampaignSpec
from repro.service import ServiceClient, StudyService
from repro.service.schemas import (
    SubmissionError,
    job_fingerprint,
    validate_campaign_submission,
    validate_submission,
)
from repro.service.store import JobStore
from repro.service.worker import Worker
from repro.workflow.executor import TIMING_METRICS
from topologies import chain_spec, fanout_spec


def comparable(run_dict):
    return {
        "workload": run_dict["workload"],
        "seed": run_dict["seed"],
        "digest": run_dict["digest"],
        "metrics": {k: v for k, v in run_dict["metrics"].items() if k not in TIMING_METRICS},
        "series": run_dict["series"],
    }


class TestValidation:
    def test_valid_campaign_becomes_a_job_spec(self):
        spec = validate_campaign_submission(fanout_spec())
        assert spec.campaign is not None
        assert spec.study_name == "fanout"
        assert spec.configurations == []
        assert spec.total_runs() == 4

    def test_cycle_is_a_submission_error(self):
        payload = fanout_spec()
        payload["nodes"][0]["depends_on"] = ["f3"]
        with pytest.raises(SubmissionError, match="cycle"):
            validate_campaign_submission(payload)

    def test_invalid_spec_is_a_submission_error(self):
        with pytest.raises(SubmissionError, match="at least one node"):
            validate_campaign_submission({"name": "x", "nodes": []})

    def test_plain_job_endpoint_rejects_campaign_payloads(self):
        with pytest.raises(SubmissionError, match="/v1/campaigns"):
            validate_submission({"study_name": "x", "campaign": fanout_spec()})

    def test_fingerprint_ignores_execution_knobs_but_not_structure(self):
        base = job_fingerprint(validate_campaign_submission(fanout_spec()))
        shm = job_fingerprint(
            validate_campaign_submission(dict(fanout_spec(), backend="shm", max_workers=4))
        )
        assert base == shm
        other = job_fingerprint(validate_campaign_submission(chain_spec(name="fanout")))
        assert base != other


class TestWorkerExecution:
    def test_campaign_job_runs_to_done_with_result_and_events(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        spec = validate_campaign_submission(fanout_spec())
        record, deduplicated = store.submit(spec)
        assert not deduplicated
        assert record.runs_total == 4

        # dedupe: identical campaign structure returns the same job
        again, deduplicated = store.submit(validate_campaign_submission(fanout_spec()))
        assert deduplicated and again.id == record.id

        Worker(store, threading.Event(), checkpoint_every=10).execute(
            store.claim_next(timeout=0)
        )
        final = store.get(record.id)
        assert final.state == "done"
        assert final.runs_done == 4  # executed + cache-spliced runs both stream

        result = json.loads(store.result_path(record.id).read_text())
        assert set(result["states"].values()) == {"done"}
        assert result["runs_executed"] == 3
        assert result["cache_hits"] == 1
        assert set(result["nodes"]) == {"root", "f1", "f2", "f3"}

        events = [e["event"] for e in store.events(record.id)]
        assert events.count("node_started") == 4  # cache-only nodes still start
        assert events.count("node_finished") == 4
        assert events[-1] == "done"

    def test_interrupted_campaign_job_resumes_bit_identically(self, tmp_path):
        reference = CampaignRunner(
            CampaignSpec.from_dict(fanout_spec()), tmp_path / "ref"
        ).run()
        assert reference.ok

        store = JobStore(tmp_path / "svc")
        record, _ = store.submit(validate_campaign_submission(fanout_spec()))

        # first server: stops at the first run boundary, job is re-queued
        stop_event = threading.Event()
        interrupt_after_runs(store, stop_event, n_runs=1)
        Worker(store, stop_event, checkpoint_every=10).execute(store.claim_next(timeout=0))
        assert store.get(record.id).state == "queued"
        assert store.get(record.id).runs_done == 1

        # second server: fresh store over the same directory completes it
        fresh = JobStore(store.root)
        assert fresh.recover() == []
        Worker(fresh, threading.Event(), checkpoint_every=10).execute(
            fresh.claim_next(timeout=0)
        )
        assert fresh.get(record.id).state == "done"

        result = json.loads(fresh.result_path(record.id).read_text())
        assert set(result["states"].values()) == {"done"}
        for node, runs in result["nodes"].items():
            expected = [r.to_dict() for r in reference.results[node].runs]
            assert [comparable(r) for r in runs] == [comparable(r) for r in expected]

        # across both invocations no run digest was executed twice
        manifest = CampaignManifest(fresh.job_dir(record.id) / "campaign" / "manifest.jsonl")
        counts = manifest.executed_run_counts()
        assert counts and all(count == 1 for count in counts.values())

    def test_failed_node_fails_the_job_with_named_nodes(self, tmp_path, monkeypatch):
        from faults import CrashAt

        CrashAt("f1", 0, mode="raise").install(monkeypatch)
        store = JobStore(tmp_path / "svc")
        record, _ = store.submit(validate_campaign_submission(fanout_spec()))
        Worker(store, threading.Event(), checkpoint_every=10).execute(
            store.claim_next(timeout=0)
        )
        final = store.get(record.id)
        assert final.state == "failed"
        assert "f1" in final.error


@pytest.mark.slow  # live HTTP server end to end
class TestHttpRoute:
    def test_submit_campaign_over_http_to_done(self, tmp_path):
        service = StudyService(tmp_path / "svc", port=0, n_workers=1, checkpoint_every=10).start()
        try:
            client = ServiceClient(service.url)
            job = client.submit_campaign(fanout_spec())
            assert job["runs_total"] == 4
            # same campaign → same job over HTTP too
            assert client.submit_campaign(fanout_spec())["id"] == job["id"]
            final = client.wait(job["id"], timeout=120.0)
            assert final["state"] == "done"
            result = client.result(job["id"])
            assert set(result["states"].values()) == {"done"}
            assert result["cache_hits"] == 1
        finally:
            service.stop()
