"""`repro campaign` CLI surface: dry-run, resume guards, --fresh, --json."""

from __future__ import annotations

import json

import pytest

from faults import run_campaign_cli
from topologies import fanout_spec


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(fanout_spec()))
    return path


class TestDryRun:
    def test_prints_schedule_without_executing(self, spec_file, tmp_path):
        rc, out, err = run_campaign_cli(
            [spec_file, "--root", tmp_path / "camp", "--dry-run"], cwd=tmp_path
        )
        assert rc == 0, err
        for node in ("root", "f1", "f2", "f3"):
            assert node in out
        assert "estimated runs: 4" in out
        assert not (tmp_path / "camp").exists()  # nothing ran, nothing written


class TestSpecErrors:
    def test_missing_spec_file_is_usage_error(self, tmp_path):
        rc, _out, err = run_campaign_cli(["nope.json"], cwd=tmp_path)
        assert rc == 2
        assert "spec file not found" in err

    def test_no_spec_and_no_root_is_usage_error(self, tmp_path):
        rc, _out, err = run_campaign_cli([], cwd=tmp_path)
        assert rc == 2
        assert "SPEC.json" in err

    def test_invalid_spec_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "nodes": []}))
        rc, _out, err = run_campaign_cli([bad], cwd=tmp_path)
        assert rc == 2
        assert "at least one node" in err


class TestRunResumeFresh:
    def test_run_resume_and_fresh_lifecycle(self, spec_file, tmp_path):
        root = tmp_path / "camp"

        rc, out, err = run_campaign_cli([spec_file, "--root", root, "--json"], cwd=tmp_path)
        assert rc == 0, err
        summary = json.loads(out.strip().splitlines()[-1])
        assert summary["ok"] is True
        assert summary["runs_executed"] == 3
        assert summary["cache_hits"] == 1

        # a root with history refuses a plain re-launch and names the way out
        rc, _out, err = run_campaign_cli([spec_file, "--root", root], cwd=tmp_path)
        assert rc == 2
        assert "--resume" in err and "--fresh" in err

        # --resume without the spec file: recalled from <root>/campaign.json
        rc, out, err = run_campaign_cli(["--root", root, "--resume", "--json"], cwd=tmp_path)
        assert rc == 0, err
        summary = json.loads(out.strip().splitlines()[-1])
        assert summary["runs_executed"] == 0
        assert summary["runs_resumed"] == 4

        # --fresh wipes the root and re-executes from scratch
        rc, out, err = run_campaign_cli(
            [spec_file, "--root", root, "--fresh", "--json"], cwd=tmp_path
        )
        assert rc == 0, err
        summary = json.loads(out.strip().splitlines()[-1])
        assert summary["runs_executed"] == 3
        assert summary["runs_resumed"] == 0
