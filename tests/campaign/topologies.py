"""Tiny campaign specs over known topologies, shared across the test matrix.

Every topology embeds a *shared run* — two nodes whose expansion contains the
same effective configuration — so the artifact-cache execute-exactly-once
contract is exercised (and countable) everywhere.  The expected
executed/cache-hit split per topology is part of the builder's contract and
asserted by both the unit tests and the kill-and-resume matrix.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.experiments.base import base_config

#: override dicts reused across topologies (distinct effective configs)
C1 = {"sigma": 0.1}
C2 = {"sigma": 0.3}
C3 = {"sigma": 0.5}


def tiny_config_dict(seed: int = 5, **overrides) -> Dict[str, Any]:
    """A base config whose runs finish in well under a second."""
    config = base_config("smoke", method="breed", seed=seed)
    fields = dict(
        n_simulations=4,
        max_iterations=20,
        n_validation_trajectories=2,
        hidden_size=8,
        n_hidden_layers=1,
    )
    fields.update(overrides)
    return dataclasses.replace(config, **fields).to_dict()


def chain_spec(**spec_overrides) -> Dict[str, Any]:
    """sweep → mid (top-1 select) → final; ``final`` re-uses a sweep run.

    Expected accounting: 3 executed (sweep×2, mid×1), 1 cache hit (final).
    """
    payload = {
        "name": "chain",
        "config": tiny_config_dict(),
        "nodes": [
            {"name": "sweep", "configurations": [C1, C2]},
            {"name": "mid", "depends_on": ["sweep"],
             "select": {"type": "top_k", "node": "sweep",
                        "metric": "final_validation_loss", "k": 1,
                        "overrides": {"max_iterations": 24}}},
            {"name": "final", "depends_on": ["mid"], "configurations": [C1]},
        ],
    }
    payload.update(spec_overrides)
    return payload


def diamond_spec(**spec_overrides) -> Dict[str, Any]:
    """src → (left, right) → join; ``right`` shares C3 with ``left``.

    Expected accounting: 4 executed (src×1, left×2, join×1), 1 cache hit
    (right's only run).
    """
    payload = {
        "name": "diamond",
        "config": tiny_config_dict(),
        "nodes": [
            {"name": "src", "configurations": [C1]},
            {"name": "left", "depends_on": ["src"], "configurations": [C2, C3]},
            {"name": "right", "depends_on": ["src"], "configurations": [C3]},
            {"name": "join", "depends_on": ["left", "right"],
             "select": {"type": "top_k", "node": "left",
                        "metric": "final_validation_loss", "k": 1,
                        "overrides": {"max_iterations": 24}}},
        ],
    }
    payload.update(spec_overrides)
    return payload


def fanout_spec(**spec_overrides) -> Dict[str, Any]:
    """root fans out to f1/f2/f3; ``f2`` duplicates ``f1``'s configuration.

    Expected accounting: 3 executed (root, f1, f3), 1 cache hit (f2).
    """
    payload = {
        "name": "fanout",
        "config": tiny_config_dict(),
        "nodes": [
            {"name": "root", "configurations": [C1]},
            {"name": "f1", "depends_on": ["root"], "configurations": [C2]},
            {"name": "f2", "depends_on": ["root"], "configurations": [C2]},
            {"name": "f3", "depends_on": ["root"], "configurations": [C3]},
        ],
    }
    payload.update(spec_overrides)
    return payload


#: topology name → (spec builder, expected executed, expected cache hits)
TOPOLOGIES: Dict[str, tuple] = {
    "chain": (chain_spec, 3, 1),
    "diamond": (diamond_spec, 4, 1),
    "fanout": (fanout_spec, 3, 1),
}
