"""Shared fixtures of the campaign tests (builders live in topologies.py)."""

from __future__ import annotations

from typing import Any, Callable, Dict

import pytest

from topologies import TOPOLOGIES


@pytest.fixture
def make_campaign() -> Callable:
    """Factory of campaign spec payloads by topology name."""

    def factory(topology: str = "chain", **spec_overrides) -> Dict[str, Any]:
        builder, _executed, _hits = TOPOLOGIES[topology]
        return builder(**spec_overrides)

    return factory
