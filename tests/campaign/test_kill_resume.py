"""The campaign kill-and-resume matrix: topology × backend × SIGKILL point.

Each cell SIGKILLs a real ``repro campaign`` subprocess at a deterministic
point (via the :mod:`repro.workflow.faults` env protocol), restarts it with
``--resume``, and requires

* the final ``result.json`` to be bit-identical to an uninterrupted
  reference (wall-clock timing metrics and telemetry excluded),
* the manifest to prove no completed run was ever re-executed, and
* the topology's shared run to have executed exactly once overall
  (cache-hit accounting survives the kill).

Serial cells die *mid-run* (the ``run`` injection point fires inside
``execute_spec`` in the driver process); shm cells die at a *run boundary*
in the campaign driver (the ``record`` point — under shm the ``run`` point
fires in a pool worker instead of the orchestrator).  Crashed shm drivers
leak worker processes and ``/dev/shm`` segments; ``run_campaign_cli`` reaps
both after every invocation.
"""

from __future__ import annotations

import json

import pytest

from faults import SIGKILLED, CrashAt, run_campaign_cli
from repro.campaign import CampaignManifest, CampaignRunner, CampaignSpec
from repro.workflow.executor import TIMING_METRICS
from topologies import TOPOLOGIES

pytestmark = pytest.mark.slow

#: (topology, backend, fault) — the kill lands on a mid-DAG node so every
#: cell has both completed work to splice and pending work to finish
MATRIX = [
    ("chain", "serial", CrashAt("mid", 0, point="run")),
    ("diamond", "serial", CrashAt("left", 1, point="run")),
    ("fanout", "serial", CrashAt("f1", 0, point="run")),
    ("chain", "shm", CrashAt("mid", 0, point="record")),
    ("diamond", "shm", CrashAt("left", 1, point="record")),
    ("fanout", "shm", CrashAt("f3", 0, point="record")),
]


def comparable(run_dict):
    """A run dict minus wall-clock noise (timing metrics, telemetry)."""
    return {
        "name": run_dict["name"],
        "config": run_dict["config"],
        "workload": run_dict["workload"],
        "seed": run_dict["seed"],
        "digest": run_dict["digest"],
        "metrics": {k: v for k, v in run_dict["metrics"].items() if k not in TIMING_METRICS},
        "series": run_dict["series"],
    }


def comparable_nodes(result_payload):
    return {
        node: [comparable(run) for run in runs]
        for node, runs in result_payload["nodes"].items()
    }


@pytest.mark.parametrize(
    "topology,backend,fault", MATRIX, ids=[f"{t}-{b}" for t, b, _ in MATRIX]
)
def test_sigkill_then_resume_is_bit_identical(topology, backend, fault, tmp_path):
    builder, executed, hits = TOPOLOGIES[topology]
    payload = builder(backend=backend, max_workers=2)

    # uninterrupted reference, same backend, separate root
    reference = CampaignRunner(
        CampaignSpec.from_dict(payload), tmp_path / "ref"
    ).run()
    assert reference.ok
    reference_nodes = comparable_nodes(reference.to_dict())

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(payload))
    root = tmp_path / "victim"

    # --- victim: SIGKILLed at the injection point, no cleanup of any kind
    rc, out, err = run_campaign_cli([spec_file, "--root", root], cwd=tmp_path, fault=fault)
    assert rc == SIGKILLED, f"victim survived its fault\nstdout:{out}\nstderr:{err}"
    assert not (root / "result.json").exists()

    # --- restart: --resume re-enters and completes
    rc, out, err = run_campaign_cli(
        [spec_file, "--root", root, "--resume", "--json"], cwd=tmp_path
    )
    assert rc == 0, f"resume failed\nstdout:{out}\nstderr:{err}"
    summary = json.loads(out.strip().splitlines()[-1])
    assert summary["ok"] is True

    # bit-identical to the uninterrupted reference
    final = json.loads((root / "result.json").read_text())
    assert comparable_nodes(final) == reference_nodes

    # the manifest ledger across BOTH invocations: every executed digest is
    # unique — completed runs were spliced on resume, never re-executed —
    # and the shared run was satisfied from the artifact cache
    manifest = CampaignManifest(root / "manifest.jsonl")
    counts = manifest.executed_run_counts()
    assert counts and all(count == 1 for count in counts.values())
    assert len(counts) == executed
    events = manifest.load()
    cached = [e for e in events if e["event"] == "run_finished" and e.get("cached")]
    assert len(cached) == hits
