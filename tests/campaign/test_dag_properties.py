"""Property-style tests over seeded random DAGs (no external property-test dep).

The generator draws edges strictly from lower to higher node index, so every
generated graph is acyclic by construction; cycle tests then inject a single
back edge.  Configurations are drawn from a small pool, so the expected
artifact-cache accounting — executed runs = distinct effective configs,
cache hits = total runs minus that — is computable independently of the
runner and checked against what it actually did.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

import pytest

from repro.api.config import OnlineTrainingConfig
from repro.workflow.executor import apply_overrides, config_digest
from repro.campaign import (
    CampaignCycleError,
    CampaignRunner,
    CampaignSpec,
    topological_order,
)
from topologies import tiny_config_dict

#: small pool of override dicts; collisions across nodes are the point
CONFIG_POOL = [{"sigma": 0.1}, {"sigma": 0.3}, {"sigma": 0.5}]


def random_dag_payload(
    seed: int,
    max_nodes: int = 8,
    max_configs: int = 2,
    with_configs: bool = False,
) -> Dict[str, Any]:
    """A seeded random campaign payload, acyclic by construction."""
    rng = random.Random(seed)
    n = rng.randint(3, max_nodes)
    nodes: List[Dict[str, Any]] = []
    for i in range(n):
        node: Dict[str, Any] = {"name": f"n{i}"}
        if i > 0:
            candidates = [f"n{j}" for j in range(i)]
            deps = rng.sample(candidates, k=rng.randint(0, min(2, len(candidates))))
            if deps:
                node["depends_on"] = sorted(deps, key=lambda s: int(s[1:]))
        if with_configs:
            node["configurations"] = [
                dict(rng.choice(CONFIG_POOL)) for _ in range(rng.randint(1, max_configs))
            ]
        nodes.append(node)
    rng.shuffle(nodes)  # declaration order independent of the index ordering
    return {"name": f"dag{seed}", "config": tiny_config_dict(), "nodes": nodes}


def reference_order(spec: CampaignSpec) -> List[str]:
    """Independent Kahn implementation with declaration-order tie-break."""
    names = [n.name for n in spec.nodes]
    remaining = {n.name: set(n.depends_on) for n in spec.nodes}
    order: List[str] = []
    while remaining:
        ready = [name for name in names if name in remaining and not remaining[name]]
        assert ready, "graph should be acyclic by construction"
        head = ready[0]
        order.append(head)
        del remaining[head]
        for deps in remaining.values():
            deps.discard(head)
    return order


class TestTopologicalOrderProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_independent_kahn_reference(self, seed):
        spec = CampaignSpec.from_dict(random_dag_payload(seed))
        assert [n.name for n in topological_order(spec)] == reference_order(spec)

    @pytest.mark.parametrize("seed", range(20))
    def test_deterministic_across_round_trips(self, seed):
        spec = CampaignSpec.from_dict(random_dag_payload(seed))
        first = [n.name for n in topological_order(spec)]
        again = [n.name for n in topological_order(CampaignSpec.from_dict(spec.to_dict()))]
        assert first == again

    @pytest.mark.parametrize("seed", range(20))
    def test_dependencies_always_precede_dependents(self, seed):
        spec = CampaignSpec.from_dict(random_dag_payload(seed))
        position = {n.name: i for i, n in enumerate(topological_order(spec))}
        for node in spec.nodes:
            for dep in node.depends_on:
                assert position[dep] < position[node.name]


class TestCycleDetectionProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_single_back_edge_is_always_caught(self, seed):
        payload = random_dag_payload(seed)
        rng = random.Random(seed + 1000)
        # pick a dependency edge (u -> v means v depends on u) and close the
        # loop by making u depend on v; fall back to a 2-cycle when the random
        # graph came out edgeless
        with_deps = [n for n in payload["nodes"] if n.get("depends_on")]
        by_name = {n["name"]: n for n in payload["nodes"]}
        if with_deps:
            dependent = rng.choice(with_deps)
            upstream = by_name[rng.choice(dependent["depends_on"])]
            upstream.setdefault("depends_on", []).append(dependent["name"])
        else:
            a, b = payload["nodes"][0], payload["nodes"][1]
            a.setdefault("depends_on", []).append(b["name"])
            b.setdefault("depends_on", []).append(a["name"])
        spec = CampaignSpec.from_dict(payload)
        with pytest.raises(CampaignCycleError) as excinfo:
            topological_order(spec)
        cycle = excinfo.value.cycle
        # the reported cycle must be a real cycle: consecutive pairs are edges
        assert len(cycle) >= 2
        deps = {n.name: set(n.depends_on) for n in spec.nodes}
        for here, there in zip(cycle, cycle[1:] + cycle[:1]):
            assert here in deps[there] or there in deps[here]


def expected_accounting(spec: CampaignSpec):
    """(total runs, distinct effective configs) for a literal-only campaign."""
    base = OnlineTrainingConfig.from_dict(spec.config)
    digests = set()
    total = 0
    for node in spec.nodes:
        for overrides in node.configurations or ({},):
            total += 1
            digests.add(config_digest(apply_overrides(base, dict(overrides))))
    return total, len(digests)


class TestCacheHitMultiplicity:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_hits_equal_shared_config_multiplicity(self, seed, tmp_path):
        payload = random_dag_payload(seed, max_nodes=4, with_configs=True)
        spec = CampaignSpec.from_dict(payload)
        total, distinct = expected_accounting(spec)
        assert total > distinct, "seed must produce at least one shared config"

        outcome = CampaignRunner(spec, tmp_path / "camp").run()
        assert outcome.ok
        assert outcome.runs_executed == distinct
        assert outcome.cache_hits == total - distinct
