"""Tests for the input/output scalers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.surrogate.normalization import MinMaxScaler, StandardScaler, SurrogateScalers

temps = st.floats(min_value=100.0, max_value=500.0, allow_nan=False)


class TestMinMaxScaler:
    def test_transform_endpoints(self):
        scaler = MinMaxScaler(np.array([0.0, 10.0]), np.array([2.0, 20.0]))
        np.testing.assert_allclose(scaler.transform(np.array([0.0, 10.0])), [0.0, 0.0])
        np.testing.assert_allclose(scaler.transform(np.array([2.0, 20.0])), [1.0, 1.0])

    def test_roundtrip(self, rng):
        scaler = MinMaxScaler.from_bounds(HEAT2D_BOUNDS)
        values = rng.uniform(100, 500, size=(10, 5))
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(values)), values)

    def test_scalar_constructor(self):
        scaler = MinMaxScaler.scalar(100.0, 500.0)
        assert scaler.transform(np.array([300.0]))[0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MinMaxScaler(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            MinMaxScaler(np.array([1.0]), np.array([1.0]))

    @given(st.lists(temps, min_size=5, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_property_maps_bounds_to_unit(self, values):
        scaler = MinMaxScaler.from_bounds(HEAT2D_BOUNDS)
        out = scaler.transform(np.array(values))
        assert np.all(out >= -1e-12) and np.all(out <= 1.0 + 1e-12)


class TestStandardScaler:
    def test_fit_transform_statistics(self, rng):
        data = rng.normal(loc=5.0, scale=2.0, size=(500, 3))
        scaler = StandardScaler().fit(data)
        out = scaler.transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_roundtrip(self, rng):
        data = rng.normal(size=(50, 4))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_feature_does_not_divide_by_zero(self):
        data = np.ones((10, 2))
        out = StandardScaler().fit(data).transform(data)
        assert np.all(np.isfinite(out))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.zeros((2, 2)))


class TestSurrogateScalers:
    @pytest.fixture
    def scalers(self):
        return SurrogateScalers.for_heat2d(HEAT2D_BOUNDS, n_timesteps=100)

    def test_input_dimensions(self, scalers):
        assert scalers.input_scaler.dim == 6

    def test_encode_single_input(self, scalers):
        row = scalers.encode_input(np.array([100.0, 500.0, 300.0, 100.0, 500.0]), 50)
        assert row.shape == (6,)
        assert row[0] == pytest.approx(0.0)
        assert row[1] == pytest.approx(1.0)
        assert row[5] == pytest.approx(0.5)

    def test_encode_batch_input(self, scalers, rng):
        params = rng.uniform(100, 500, size=(8, 5))
        steps = np.arange(8)
        rows = scalers.encode_input(params, steps)
        assert rows.shape == (8, 6)
        assert np.all((rows >= 0.0) & (rows <= 1.0))

    def test_encode_batch_requires_matching_lengths(self, scalers, rng):
        with pytest.raises(ValueError):
            scalers.encode_input(rng.uniform(100, 500, size=(3, 5)), np.arange(4))

    def test_output_roundtrip(self, scalers, rng):
        field = rng.uniform(100, 500, size=64)
        np.testing.assert_allclose(scalers.decode_output(scalers.encode_output(field)), field)

    def test_output_range_normalised(self, scalers):
        assert scalers.encode_output(np.array([100.0]))[0] == pytest.approx(0.0)
        assert scalers.encode_output(np.array([500.0]))[0] == pytest.approx(1.0)
