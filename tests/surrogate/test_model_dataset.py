"""Tests for the surrogate MLP, offline datasets and validation set."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.sampling.uniform import uniform_in_bounds
from repro.surrogate.dataset import BatchIterator, OfflineDataset, generate_offline_dataset
from repro.surrogate.model import DirectSurrogate, SurrogateConfig, build_mlp
from repro.surrogate.validation import build_validation_set, validation_loss


class TestSurrogateConfig:
    def test_defaults_match_paper(self):
        config = SurrogateConfig()
        assert config.input_dim == 6
        assert config.output_dim == 64 * 64
        assert config.activation == "relu"

    def test_label(self):
        assert SurrogateConfig(hidden_size=32, n_hidden_layers=2).label == "H=32, L=2"

    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateConfig(hidden_size=0)
        with pytest.raises(ValueError):
            SurrogateConfig(n_hidden_layers=0)
        with pytest.raises(ValueError):
            SurrogateConfig(activation="gelu")
        with pytest.raises(ValueError):
            SurrogateConfig(input_dim=0)


class TestBuildMLP:
    @pytest.mark.parametrize("layers,expected_linears", [(1, 2), (2, 3), (3, 4)])
    def test_layer_counts(self, rng, layers, expected_linears):
        config = SurrogateConfig(output_dim=16, hidden_size=8, n_hidden_layers=layers)
        model = build_mlp(config, rng=rng)
        n_linear = sum(1 for m in model if isinstance(m, nn.Linear))
        assert n_linear == expected_linears

    def test_parameter_count_formula(self, rng):
        # H=16, L=1, in=6, out=64: (6*16+16) + (16*64+64)
        config = SurrogateConfig(output_dim=64, hidden_size=16, n_hidden_layers=1)
        assert build_mlp(config, rng=rng).num_parameters() == (6 * 16 + 16) + (16 * 64 + 64)

    @pytest.mark.parametrize("activation", ["relu", "tanh", "leaky_relu"])
    def test_activations(self, rng, activation):
        config = SurrogateConfig(output_dim=4, hidden_size=4, activation=activation)
        model = build_mlp(config, rng=rng)
        assert model(Tensor(rng.normal(size=(2, 6)))).shape == (2, 4)


class TestDirectSurrogate:
    @pytest.fixture
    def surrogate(self, tiny_scalers, tiny_heat_config, rng):
        config = SurrogateConfig(
            output_dim=tiny_heat_config.grid_size**2, hidden_size=8, n_hidden_layers=1
        )
        return DirectSurrogate(config, tiny_scalers, rng=rng)

    def test_forward_shape(self, surrogate, rng):
        out = surrogate(Tensor(rng.random((3, 6))))
        assert out.shape == (3, 36)

    def test_predict_field_physical_units(self, surrogate):
        field = surrogate.predict_field([300.0, 100.0, 500.0, 200.0, 400.0], timestep=2)
        assert field.shape == (36,)
        assert np.all(np.isfinite(field))

    def test_predict_trajectory(self, surrogate):
        out = surrogate.predict_trajectory([300.0] * 5, timesteps=[0, 1, 2])
        assert out.shape == (3, 36)

    def test_num_parameters_positive(self, surrogate):
        assert surrogate.num_parameters() > 0

    def test_prediction_does_not_build_graph(self, surrogate):
        surrogate.predict_field([300.0] * 5, 1)
        assert all(p.grad is None for p in surrogate.parameters())


class TestOfflineDataset:
    @pytest.fixture
    def dataset(self, tiny_solver, tiny_scalers, rng):
        params = uniform_in_bounds(3, HEAT2D_BOUNDS, rng)
        return generate_offline_dataset(tiny_solver, params, tiny_scalers)

    def test_size(self, dataset, tiny_solver):
        # 3 simulations x (T+1) time steps
        assert len(dataset) == 3 * (tiny_solver.n_timesteps + 1)

    def test_normalised_ranges(self, dataset):
        assert np.all((dataset.inputs >= 0.0) & (dataset.inputs <= 1.0))
        assert np.all((dataset.targets >= -1e-9) & (dataset.targets <= 1.0 + 1e-9))

    def test_skip_initial_step(self, tiny_solver, tiny_scalers, rng):
        params = uniform_in_bounds(2, HEAT2D_BOUNDS, rng)
        ds = generate_offline_dataset(tiny_solver, params, tiny_scalers, include_initial_step=False)
        assert len(ds) == 2 * tiny_solver.n_timesteps
        assert ds.timesteps.min() == 1

    def test_subset_and_split(self, dataset, rng):
        subset = dataset.subset([0, 1, 2])
        assert len(subset) == 3
        train, held = dataset.split(0.75, rng)
        assert len(train) + len(held) == len(dataset)

    def test_split_validation(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.split(1.5, rng)

    def test_save_load_roundtrip(self, dataset, tmp_path):
        path = dataset.save(tmp_path / "data")
        loaded = OfflineDataset.load(path)
        np.testing.assert_array_equal(loaded.inputs, dataset.inputs)
        np.testing.assert_array_equal(loaded.simulation_ids, dataset.simulation_ids)

    def test_nbytes_positive(self, dataset):
        assert dataset.nbytes > 0

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            OfflineDataset(np.zeros((3, 2)), np.zeros((2, 2)), np.zeros(3), np.zeros(3))


class TestBatchIterator:
    @pytest.fixture
    def dataset(self, tiny_solver, tiny_scalers, rng):
        params = uniform_in_bounds(2, HEAT2D_BOUNDS, rng)
        return generate_offline_dataset(tiny_solver, params, tiny_scalers)

    def test_covers_every_sample_once_per_epoch(self, dataset, rng):
        iterator = BatchIterator(dataset, batch_size=5, rng=rng)
        seen = []
        for _, _, idx in iterator:
            seen.extend(idx.tolist())
        assert sorted(seen) == list(range(len(dataset)))

    def test_len_with_and_without_drop_last(self, dataset, rng):
        assert len(BatchIterator(dataset, 5, rng)) == int(np.ceil(len(dataset) / 5))
        assert len(BatchIterator(dataset, 5, rng, drop_last=True)) == len(dataset) // 5

    def test_drop_last_batches_full(self, dataset, rng):
        for inputs, _, _ in BatchIterator(dataset, 5, rng, drop_last=True):
            assert inputs.shape[0] == 5

    def test_invalid_batch_size(self, dataset, rng):
        with pytest.raises(ValueError):
            BatchIterator(dataset, 0, rng)


class TestValidationSet:
    def test_build_and_size(self, tiny_solver, tiny_scalers):
        vset = build_validation_set(tiny_solver, HEAT2D_BOUNDS, tiny_scalers, n_trajectories=3)
        assert len(vset) == 3 * (tiny_solver.n_timesteps + 1)
        assert vset.parameters.shape == (3, 5)
        assert HEAT2D_BOUNDS.contains_all(vset.parameters)

    def test_requires_positive_trajectories(self, tiny_solver, tiny_scalers):
        with pytest.raises(ValueError):
            build_validation_set(tiny_solver, HEAT2D_BOUNDS, tiny_scalers, n_trajectories=0)

    def test_validation_loss_decreases_with_training(self, tiny_solver, tiny_scalers, rng):
        vset = build_validation_set(tiny_solver, HEAT2D_BOUNDS, tiny_scalers, n_trajectories=2)
        config = SurrogateConfig(output_dim=tiny_solver.field_size, hidden_size=16, n_hidden_layers=1)
        model = DirectSurrogate(config, tiny_scalers, rng=rng)
        before = validation_loss(model, vset)
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        for _ in range(60):
            model.zero_grad()
            loss = nn.MSELoss()(model(Tensor(vset.inputs)), Tensor(vset.targets))
            loss.backward()
            optimizer.step()
        after = validation_loss(model, vset)
        assert after < before

    def test_validation_loss_batched_equals_full(self, tiny_solver, tiny_scalers, rng):
        vset = build_validation_set(tiny_solver, HEAT2D_BOUNDS, tiny_scalers, n_trajectories=2)
        config = SurrogateConfig(output_dim=tiny_solver.field_size, hidden_size=4, n_hidden_layers=1)
        model = DirectSurrogate(config, tiny_scalers, rng=rng)
        assert validation_loss(model, vset, batch_size=7) == pytest.approx(
            validation_loss(model, vset, batch_size=10_000)
        )
