"""Tests for configuration grids and study result records."""

from __future__ import annotations

import pytest

from repro.workflow.grid import ParameterGrid, one_factor_at_a_time
from repro.workflow.results import RunResult, StudyResults


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid(base={"seed": 0}, axes={"H": [16, 32], "L": [1, 2, 3]})
        configs = grid.configurations()
        assert len(grid) == 6 and len(configs) == 6
        assert all(c["seed"] == 0 for c in configs)
        assert {(c["H"], c["L"]) for c in configs} == {(h, l) for h in (16, 32) for l in (1, 2, 3)}

    def test_empty_axes_single_config(self):
        grid = ParameterGrid(base={"x": 1})
        assert grid.configurations() == [{"x": 1}]

    def test_axis_conflicts_with_base(self):
        with pytest.raises(ValueError):
            ParameterGrid(base={"H": 16}, axes={"H": [16, 32]})

    def test_empty_axis_values(self):
        with pytest.raises(ValueError):
            ParameterGrid(axes={"H": []})

    def test_with_base(self):
        grid = ParameterGrid(axes={"H": [1]}).with_base(seed=3)
        assert grid.configurations()[0]["seed"] == 3


class TestOneFactorAtATime:
    def test_expansion_and_tags(self):
        configs = one_factor_at_a_time(
            base={"sigma": 5.0, "period": 200},
            factors={"sigma": [1.0, 10.0], "period": [100, 300, 500]},
        )
        assert len(configs) == 5
        sigma_configs = [c for c in configs if c["_factor"] == "sigma"]
        assert len(sigma_configs) == 2
        assert all(c["period"] == 200 for c in sigma_configs)
        assert [c["_value"] for c in sigma_configs] == [1.0, 10.0]

    def test_unknown_factor(self):
        with pytest.raises(KeyError):
            one_factor_at_a_time(base={"sigma": 5.0}, factors={"window": [1]})

    def test_empty_values(self):
        with pytest.raises(ValueError):
            one_factor_at_a_time(base={"sigma": 5.0}, factors={"sigma": []})


class TestRunResult:
    def test_metric_access(self):
        run = RunResult(name="r", config={"H": 16}, metrics={"loss": 0.5})
        assert run.metric("loss") == 0.5
        assert run.metric("missing") != run.metric("missing")  # NaN

    def test_to_dict_jsonable(self):
        import numpy as np

        run = RunResult(
            name="r",
            config={"H": np.int64(16)},
            metrics={"loss": np.float64(0.5)},
            series={"curve": [np.float64(1.0)]},
        )
        payload = run.to_dict()
        assert isinstance(payload["config"]["H"], int)
        assert isinstance(payload["metrics"]["loss"], float)


class TestStudyResults:
    def _results(self):
        results = StudyResults(study="demo")
        results.add(RunResult("a", {"H": 16, "method": "breed"}, {"loss": 0.3}))
        results.add(RunResult("b", {"H": 32, "method": "breed"}, {"loss": 0.1}))
        results.add(RunResult("c", {"H": 16, "method": "random"}, {"loss": 0.2}))
        return results

    def test_len_iter(self):
        results = self._results()
        assert len(results) == 3
        assert len(list(results)) == 3

    def test_filter(self):
        results = self._results()
        assert len(results.filter(H=16)) == 2
        assert len(results.filter(H=16, method="random")) == 1

    def test_best(self):
        results = self._results()
        assert results.best("loss").name == "b"
        assert results.best("loss", minimize=False).name == "a"
        assert StudyResults("empty").best("loss") is None

    def test_table_rendering(self):
        table = self._results().table(columns=["H", "method"], metric_columns=["loss"])
        assert "loss" in table.splitlines()[0]
        assert len(table.splitlines()) == 5  # header + separator + 3 rows

    def test_json_roundtrip(self, tmp_path):
        results = self._results()
        path = results.save_json(tmp_path / "study.json")
        loaded = StudyResults.load_json(path)
        assert loaded.study == "demo"
        assert len(loaded) == 3
        assert loaded.best("loss").name == "b"

    def test_workload_and_seed_round_trip(self, tmp_path):
        # Multi-workload study JSON stays self-describing: each run records
        # its effective workload and seed even when the config dict omits them.
        results = StudyResults(study="multi")
        results.add(RunResult("a", {"method": "breed"}, {"loss": 0.3}, workload="heat2d", seed=5))
        results.add(RunResult("b", {"method": "breed"}, {"loss": 0.2}, workload="heat1d", seed=7))
        path = results.save_json(tmp_path / "multi.json")
        loaded = StudyResults.load_json(path)
        assert [(r.workload, r.seed) for r in loaded] == [("heat2d", 5), ("heat1d", 7)]

    def test_legacy_payload_without_workload_defaults(self):
        run = RunResult.from_dict({"name": "old", "config": {}, "metrics": {"loss": 1.0}})
        assert run.workload == "heat2d"
        assert run.seed == 0


class TestTimingSummary:
    def test_summarises_elapsed_seconds(self):
        results = StudyResults(study="s")
        results.add(RunResult(name="a", config={}, metrics={"elapsed_seconds": 2.0}))
        results.add(RunResult(name="b", config={}, metrics={"elapsed_seconds": 4.0}))
        results.add(RunResult(name="c", config={}, metrics={}))  # no timing recorded
        summary = results.timing_summary()
        assert summary == {
            "runs": 3.0,
            "total_seconds": 6.0,
            "mean_seconds": 3.0,
            "max_seconds": 4.0,
        }

    def test_empty_results(self):
        summary = StudyResults(study="s").timing_summary()
        assert summary == {
            "runs": 0.0,
            "total_seconds": 0.0,
            "mean_seconds": 0.0,
            "max_seconds": 0.0,
        }

    def test_single_run(self):
        results = StudyResults(study="s")
        results.add(RunResult(name="a", config={}, metrics={"elapsed_seconds": 1.5}))
        summary = results.timing_summary()
        assert summary["runs"] == 1.0
        assert summary["total_seconds"] == summary["mean_seconds"] == summary["max_seconds"] == 1.5

    def test_runs_without_timing_only(self):
        # All-resumed study where no attempt recorded wall time: counts runs,
        # zeros the aggregates instead of dividing by zero.
        results = StudyResults(study="s")
        results.add(RunResult(name="a", config={}, metrics={}))
        results.add(RunResult(name="b", config={}, metrics={}))
        summary = results.timing_summary()
        assert summary["runs"] == 2.0
        assert summary["mean_seconds"] == 0.0

    def test_survives_json_resume_round_trip(self, tmp_path):
        # A resumed study reloads completed runs from JSON; their restored
        # elapsed_seconds must summarise identically to the live objects.
        results = StudyResults(study="s")
        results.add(RunResult(name="a", config={}, metrics={"elapsed_seconds": 2.0}))
        results.add(RunResult(name="b", config={}, metrics={"elapsed_seconds": 0.5}))
        loaded = StudyResults.load_json(results.save_json(tmp_path / "study.json"))
        assert loaded.timing_summary() == results.timing_summary()


class TestTelemetrySummary:
    def test_sums_per_run_counters_and_skips_worker_metadata(self):
        results = StudyResults(study="s")
        results.add(RunResult(
            "a", {}, {}, telemetry={"repro_session_ticks_total": 3.0, "_worker_pid": 11.0}
        ))
        results.add(RunResult(
            "b", {}, {}, telemetry={"repro_session_ticks_total": 5.0, "_worker_pid": 12.0}
        ))
        assert results.telemetry_summary() == {"repro_session_ticks_total": 8.0}

    def test_empty_when_telemetry_disabled(self):
        results = StudyResults(study="s")
        results.add(RunResult("a", {}, {}))
        assert results.telemetry_summary() == {}

    def test_telemetry_round_trips_through_json(self, tmp_path):
        results = StudyResults(study="s")
        results.add(RunResult("a", {}, {}, telemetry={"repro_solver_steps_total": 40.0}))
        loaded = StudyResults.load_json(results.save_json(tmp_path / "study.json"))
        assert loaded.runs[0].telemetry == {"repro_solver_steps_total": 40.0}

    def test_legacy_payload_without_telemetry_defaults_empty(self):
        run = RunResult.from_dict({"name": "old", "config": {}, "metrics": {}})
        assert run.telemetry == {}
