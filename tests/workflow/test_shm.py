"""Shared-memory pool/inputs/ring lifecycle tests (incl. crash + leak paths)."""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.surrogate.validation import ValidationSet
from repro.workflow.shm import (
    SHM_NAME_PREFIX,
    SharedArrayPool,
    SharedResultRing,
    SharedStudyInputs,
    orphaned_segments,
)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as clean as it found it."""
    before = set(orphaned_segments())
    yield
    leaked = set(orphaned_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _example_arrays() -> dict:
    rng = np.random.default_rng(7)
    return {
        "a": rng.standard_normal((4, 5)),
        "b": np.arange(12, dtype=np.int64).reshape(3, 4),
        "c": rng.random(1),
    }


class TestSharedArrayPool:
    def test_put_get_roundtrip_bit_identical(self):
        pool = SharedArrayPool()
        try:
            arrays = _example_arrays()
            for key, array in arrays.items():
                ref = pool.put(key, array)
                assert ref.block.startswith(SHM_NAME_PREFIX)
                assert ref.shape == array.shape
            for key, array in arrays.items():
                view = pool.get(key)
                assert view.dtype == array.dtype
                np.testing.assert_array_equal(view, array)
        finally:
            pool.unlink()

    def test_views_are_read_only_by_default(self):
        pool = SharedArrayPool()
        try:
            pool.put("x", np.zeros(3))
            view = pool.get("x")
            with pytest.raises(ValueError):
                view[0] = 1.0
            writable = pool.get("x", writable=True)
            writable[0] = 1.0
            assert pool.get("x")[0] == 1.0
        finally:
            pool.unlink()

    def test_attach_sees_owner_data_zero_copy(self):
        pool = SharedArrayPool()
        try:
            source = np.arange(6, dtype=np.float64)
            pool.put("x", source)
            attached = SharedArrayPool.attach(pool.manifest())
            try:
                np.testing.assert_array_equal(attached.get("x"), source)
                # In-place writes through one pool are visible in the other
                # (same physical pages — that is the zero-copy contract).
                pool.get("x", writable=True)[0] = 42.0
                assert attached.get("x")[0] == 42.0
            finally:
                attached.close()
        finally:
            pool.unlink()

    def test_manifest_carries_refcounts(self):
        pool = SharedArrayPool()
        try:
            pool.put("x", np.zeros(2))
            manifest = pool.manifest()
            (entry,) = manifest["arrays"]
            assert entry["refcount"] == 1
            assert pool.refcount("x") == 1
            attached = SharedArrayPool.attach(manifest)
            assert attached.refcount("x") == 0  # nothing mapped yet
            attached.get("x")
            assert attached.refcount("x") == 1
            attached.close()
            assert attached.refcount("x") == 0
        finally:
            pool.unlink()

    def test_double_close_and_double_unlink_are_noops(self):
        pool = SharedArrayPool()
        pool.put("x", np.zeros(2))
        pool.close()
        pool.close()
        pool.unlink()
        pool.unlink()
        assert orphaned_segments() == []

    def test_closed_pool_rejects_use(self):
        pool = SharedArrayPool()
        pool.put("x", np.zeros(2))
        pool.close()
        with pytest.raises(RuntimeError):
            pool.get("x")
        with pytest.raises(RuntimeError):
            pool.put("y", np.zeros(2))
        pool.unlink()

    def test_attached_pool_cannot_put_or_unlink(self):
        pool = SharedArrayPool()
        try:
            pool.put("x", np.zeros(2))
            attached = SharedArrayPool.attach(pool.manifest())
            with pytest.raises(RuntimeError):
                attached.put("y", np.zeros(2))
            with pytest.raises(RuntimeError):
                attached.unlink()
            attached.close()
        finally:
            pool.unlink()

    def test_duplicate_key_rejected(self):
        pool = SharedArrayPool()
        try:
            pool.put("x", np.zeros(2))
            with pytest.raises(KeyError):
                pool.put("x", np.ones(2))
        finally:
            pool.unlink()

    def test_context_manager_owner_unlinks(self):
        with SharedArrayPool() as pool:
            pool.put("x", np.zeros(8))
            name = pool.manifest()["arrays"][0]["block"]
            assert name in orphaned_segments()
        assert orphaned_segments() == []

    def test_context_manager_attachment_only_closes(self):
        with SharedArrayPool() as pool:
            pool.put("x", np.arange(3, dtype=np.float64))
            with SharedArrayPool.attach(pool.manifest()) as attached:
                np.testing.assert_array_equal(attached.get("x"), np.arange(3))
            # The attachment exiting must not have destroyed the segment.
            np.testing.assert_array_equal(pool.get("x"), np.arange(3))
        assert orphaned_segments() == []


def _crashing_attacher(manifest):  # pragma: no cover - runs in a child process
    pool = SharedArrayPool.attach(manifest)
    pool.get("x")
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashSafety:
    def test_owner_cleans_up_after_attached_worker_crash(self):
        pool = SharedArrayPool()
        pool.put("x", np.arange(64, dtype=np.float64))
        worker = mp.Process(target=_crashing_attacher, args=(pool.manifest(),))
        worker.start()
        worker.join(timeout=30)
        assert worker.exitcode == -signal.SIGKILL
        # The crash must neither destroy the owner's live segment...
        np.testing.assert_array_equal(pool.get("x"), np.arange(64))
        pool.unlink()
        # ...nor leave anything behind once the owner unlinks.
        assert orphaned_segments() == []

    def test_attaching_process_does_not_register_with_resource_tracker(self):
        # A whole pool lifecycle in a fresh interpreter: any resource_tracker
        # mis-accounting (bpo-39959) surfaces as a KeyError traceback or a
        # leaked-segment warning on stderr at interpreter shutdown.
        script = """
import multiprocessing as mp
import numpy as np
from repro.workflow.shm import SharedArrayPool

def attach_and_exit(manifest):
    pool = SharedArrayPool.attach(manifest)
    assert pool.get("x").sum() == 10.0
    pool.close()

if __name__ == "__main__":
    pool = SharedArrayPool()
    pool.put("x", np.array([1.0, 2.0, 3.0, 4.0]))
    worker = mp.Process(target=attach_and_exit, args=(pool.manifest(),))
    worker.start()
    worker.join(timeout=30)
    assert worker.exitcode == 0
    pool.unlink()
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(os.path.dirname(os.path.dirname(os.path.dirname(__file__)))),
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr, result.stderr
        assert orphaned_segments() == []


def _tiny_validation_set(seed: int) -> ValidationSet:
    rng = np.random.default_rng(seed)
    return ValidationSet(
        inputs=rng.random((12, 6)),
        targets=rng.random((12, 36)),
        parameters=rng.random((3, 5)),
        n_trajectories=3,
        n_timesteps=4,
    )


class TestSharedStudyInputs:
    def test_build_attach_roundtrip(self):
        original = _tiny_validation_set(0)
        shared = SharedStudyInputs.build([(("scenario", 1), original)])
        try:
            attached = SharedStudyInputs.attach(shared.manifest())
            try:
                assert ("scenario", 1) in attached
                clone = attached.validation_set(("scenario", 1))
                np.testing.assert_array_equal(clone.inputs, original.inputs)
                np.testing.assert_array_equal(clone.targets, original.targets)
                np.testing.assert_array_equal(clone.parameters, original.parameters)
                assert clone.n_trajectories == original.n_trajectories
                assert clone.n_timesteps == original.n_timesteps
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_disabled_validation_is_recorded_as_none(self):
        shared = SharedStudyInputs.build([("k", None)])
        try:
            attached = SharedStudyInputs.attach(shared.manifest())
            assert "k" in attached
            assert attached.validation_set("k") is None
            attached.close()
        finally:
            shared.unlink()

    def test_unknown_scenario_raises_key_error(self):
        shared = SharedStudyInputs.build([("k", None)])
        try:
            with pytest.raises(KeyError):
                shared.validation_set("other")
        finally:
            shared.unlink()


class TestSharedResultRing:
    def test_write_read_roundtrip_bit_identical(self):
        rng = np.random.default_rng(3)
        series = {
            "train_losses": rng.standard_normal(17),
            "validation_losses": rng.standard_normal(5),
            "empty": np.zeros(0),
        }
        ring = SharedResultRing(n_slots=2, slot_floats=64)
        try:
            layout = ring.try_write(1, series)
            assert layout is not None
            read = ring.read(1, layout)
            assert set(read) == set(series)
            for key, values in series.items():
                assert read[key] == values.tolist()  # bit-exact float64 round trip
        finally:
            ring.unlink()

    def test_overflow_returns_none(self):
        ring = SharedResultRing(n_slots=1, slot_floats=4)
        try:
            assert ring.try_write(0, {"too_big": np.zeros(5)}) is None
            assert ring.try_write(0, {"fits": np.zeros(4)}) is not None
        finally:
            ring.unlink()

    def test_slot_out_of_range(self):
        ring = SharedResultRing(n_slots=2, slot_floats=4)
        try:
            with pytest.raises(IndexError):
                ring.try_write(2, {"x": np.zeros(1)})
        finally:
            ring.unlink()

    def test_attach_reads_worker_written_slots(self):
        ring = SharedResultRing(n_slots=2, slot_floats=8)
        try:
            attached = SharedResultRing.attach(ring.manifest())
            layout = attached.try_write(0, {"x": np.array([1.5, 2.5])})
            attached.close()
            assert ring.read(0, layout) == {"x": [1.5, 2.5]}
        finally:
            ring.unlink()

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SharedResultRing(n_slots=0, slot_floats=4)
        with pytest.raises(ValueError):
            SharedResultRing(n_slots=1, slot_floats=0)
