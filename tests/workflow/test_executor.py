"""Tests for the study-execution engine: specs, backends, checkpoint/resume."""

from __future__ import annotations

import json
import logging
import pickle

import pytest

from repro.workflow.executor import (
    _SHM_CRASH_ENV,
    JsonlCheckpoint,
    MultiprocessExecutor,
    RunSpec,
    SerialExecutor,
    SharedMemoryExecutor,
    StudyInputCache,
    TIMING_METRICS,
    effective_worker_count,
    execute_spec,
    get_executor,
)
from repro.workflow.results import RunResult, StudyResults
from repro.workflow.shm import orphaned_segments
from repro.workflow.study import StudyRunner

#: a tiny one-factor-at-a-time grid (the fig3b shape) for backend comparisons
GRID = [
    {"_factor": "sigma", "_value": 1.0, "sigma": 1.0},
    {"_factor": "sigma", "_value": 25.0, "sigma": 25.0},
    {"_factor": "period", "_value": 5, "period": 5},
    {"_factor": "period", "_value": 20, "period": 20},
]


def _comparable_metrics(run: RunResult) -> dict:
    return {k: v for k, v in run.metrics.items() if k not in TIMING_METRICS}


class TestRunSpec:
    def test_build_config_applies_overrides(self, tiny_run_config):
        spec = RunSpec(
            name="s", config=tiny_run_config.to_dict(), overrides={"sigma": 3.0, "hidden_size": 4}
        )
        config = spec.build_config()
        assert config.breed.sigma == 3.0
        assert config.hidden_size == 4
        assert config.n_simulations == tiny_run_config.n_simulations

    def test_spec_is_picklable(self, tiny_run_config):
        spec = RunSpec(name="s", config=tiny_run_config.to_dict(), overrides={"_factor": "sigma"})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build_config() == spec.build_config()


class TestStudyInputCache:
    def test_same_scenario_shares_inputs(self, tiny_run_config):
        cache = StudyInputCache()
        solver_a, validation_a = cache.inputs(tiny_run_config)
        solver_b, validation_b = cache.inputs(tiny_run_config)
        assert solver_a is solver_b
        assert validation_a is validation_b
        assert len(cache) == 1

    def test_different_validation_budget_is_a_different_entry(self, tiny_run_config):
        from dataclasses import replace

        cache = StudyInputCache()
        cache.inputs(tiny_run_config)
        cache.inputs(replace(tiny_run_config, n_validation_trajectories=5))
        assert len(cache) == 2

    def test_workload_change_is_a_different_entry(self, tiny_run_config):
        from dataclasses import replace

        from repro.sampling.bounds import HEAT1D_BOUNDS

        cache = StudyInputCache()
        cache.inputs(tiny_run_config)
        cache.inputs(replace(tiny_run_config, workload="heat1d", bounds=HEAT1D_BOUNDS))
        assert len(cache) == 2

    def test_validation_disabled(self, tiny_run_config):
        from dataclasses import replace

        cache = StudyInputCache()
        _, validation = cache.inputs(replace(tiny_run_config, n_validation_trajectories=0))
        assert validation is None


class TestExecutorBackends:
    def test_get_executor_names(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("process", max_workers=2), MultiprocessExecutor)
        assert isinstance(get_executor("shm", max_workers=2), SharedMemoryExecutor)
        with pytest.raises(ValueError):
            get_executor("slurm")

    def test_serial_retains_full_results(self, tiny_run_config):
        executor = SerialExecutor()
        specs = [RunSpec(name="r0", config=tiny_run_config.to_dict(), overrides={})]
        records = executor.execute(specs)
        assert len(records) == 1
        assert set(executor.full_results) == {"r0"}
        assert executor.full_results["r0"].method in ("Breed", "Random")

    def test_process_backend_bit_identical_to_serial(self, tiny_run_config):
        serial = StudyRunner(base_config=tiny_run_config, study_name="det").run_all(GRID)
        process = StudyRunner(
            base_config=tiny_run_config, study_name="det", backend="process", max_workers=2
        ).run_all(GRID)
        assert [r.name for r in serial] == [r.name for r in process]
        for serial_run, process_run in zip(serial, process):
            # Bit-identical series and metrics (timing metrics measure
            # wall-clock and are the only permitted difference).
            assert serial_run.series == process_run.series
            assert _comparable_metrics(serial_run) == _comparable_metrics(process_run)
            assert serial_run.workload == process_run.workload
            assert serial_run.seed == process_run.seed

    def test_completion_order_reordered_to_spec_order(self, tiny_run_config):
        seen = []
        executor = MultiprocessExecutor(max_workers=2)
        specs = StudyRunner(base_config=tiny_run_config, study_name="ord").build_specs(GRID)
        records = executor.execute(specs, on_record=lambda i, r: seen.append(r.name))
        # Whatever order runs completed in, the returned list is spec order.
        assert [r.name for r in records] == [s.name for s in specs]
        assert sorted(seen) == sorted(s.name for s in specs)

    def test_default_worker_count_is_cpu_count_clamped_to_specs(self, monkeypatch, caplog):
        import repro.workflow.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        with caplog.at_level(logging.INFO, logger="repro.workflow"):
            assert effective_worker_count(None, 3, backend="process") == 3
        logged = [r for r in caplog.records if "worker(s)" in r.getMessage()]
        assert len(logged) == 1
        assert "defaulted to CPU count" in logged[0].getMessage()

    def test_explicit_worker_count_clamped_to_at_least_one(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.workflow"):
            assert effective_worker_count(0, 5, backend="shm") == 1
            assert effective_worker_count(16, 5, backend="shm") == 5
        assert all("defaulted" not in r.getMessage() for r in caplog.records)

    def test_cpu_count_none_falls_back_to_one_worker(self, monkeypatch):
        import repro.workflow.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: None)
        assert effective_worker_count(None, 4, backend="process") == 1


@pytest.mark.slow  # spawns real shm worker pools
class TestSharedMemoryBackend:
    @pytest.fixture(autouse=True)
    def no_leaked_segments(self):
        yield
        assert orphaned_segments() == []

    def test_shm_backend_bit_identical_to_serial(self, tiny_run_config):
        serial = StudyRunner(base_config=tiny_run_config, study_name="det").run_all(GRID)
        shm = StudyRunner(
            base_config=tiny_run_config, study_name="det", backend="shm", max_workers=2
        ).run_all(GRID)
        assert [r.name for r in serial] == [r.name for r in shm]
        for serial_run, shm_run in zip(serial, shm):
            assert serial_run.series == shm_run.series
            assert _comparable_metrics(serial_run) == _comparable_metrics(shm_run)
            assert serial_run.workload == shm_run.workload
            assert serial_run.seed == shm_run.seed

    def test_all_backends_bit_identical_across_all_workloads(self, tiny_run_config):
        """serial ↔ process ↔ shm parity on every built-in workload.

        One study whose runs each select a different workload (the
        cross-workload shape) — which also exercises the shm backend's
        multi-scenario input sharing, one shared validation set per workload.
        The list is pinned to the built-ins rather than ``workload_names()``
        because doctest runs register throwaway workloads whose factories do
        not survive outside their session.
        """
        from dataclasses import replace

        from repro.api.registry import workload_names

        builtins = (
            "advection1d",
            "advection2d",
            "analytic",
            "burgers",
            "fisher",
            "heat1d",
            "heat2d",
        )
        assert set(builtins) <= set(workload_names())
        config = replace(tiny_run_config, max_iterations=30)
        configurations = [
            {"_name": workload, "workload": workload} for workload in builtins
        ]
        per_backend = {
            backend: StudyRunner(
                base_config=config, study_name="par", backend=backend, max_workers=2
            ).run_all(configurations, name_key="_name")
            for backend in ("serial", "process", "shm")
        }
        assert len(per_backend["serial"]) == len(configurations)
        for backend in ("process", "shm"):
            for ref_run, run in zip(per_backend["serial"], per_backend[backend]):
                assert ref_run.name == run.name
                assert ref_run.series == run.series, (ref_run.name, backend)
                assert _comparable_metrics(ref_run) == _comparable_metrics(run), (
                    ref_run.name,
                    backend,
                )

    def test_completion_stream_and_spec_order(self, tiny_run_config):
        seen = []
        executor = SharedMemoryExecutor(max_workers=2)
        specs = StudyRunner(base_config=tiny_run_config, study_name="ord").build_specs(GRID)
        records = executor.execute(specs, on_record=lambda i, r: seen.append(r.name))
        assert [r.name for r in records] == [s.name for s in specs]
        assert sorted(seen) == sorted(s.name for s in specs)

    def test_empty_spec_list(self):
        assert SharedMemoryExecutor(max_workers=2).execute([]) == []

    def test_oversized_series_fall_back_to_pickling(self, tiny_run_config):
        serial = StudyRunner(base_config=tiny_run_config, study_name="of").run_all(GRID[:2])
        specs = StudyRunner(base_config=tiny_run_config, study_name="of").build_specs(GRID[:2])
        # A 4-float slot cannot hold any real series: every record must take
        # the pickle fallback — and still be bit-identical.
        records = SharedMemoryExecutor(max_workers=2, slot_floats=4).execute(specs)
        for serial_run, shm_run in zip(serial, records):
            assert serial_run.series == shm_run.series
            assert _comparable_metrics(serial_run) == _comparable_metrics(shm_run)

    def test_worker_crash_raises_and_leaks_nothing(self, tiny_run_config, monkeypatch):
        runner = StudyRunner(
            base_config=tiny_run_config, study_name="crash", backend="shm", max_workers=2
        )
        crash_name = runner.run_names(GRID)[1]
        monkeypatch.setenv(_SHM_CRASH_ENV, crash_name)
        with pytest.raises(RuntimeError, match="died"):
            runner.run_all(GRID)

    def test_crashed_study_resumes_to_completion(self, tiny_run_config, monkeypatch, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StudyRunner(
            base_config=tiny_run_config, study_name="crash", backend="shm", max_workers=2
        )
        monkeypatch.setenv(_SHM_CRASH_ENV, runner.run_names(GRID)[2])
        with pytest.raises(RuntimeError):
            runner.run_all(GRID, checkpoint=path)
        monkeypatch.delenv(_SHM_CRASH_ENV)
        results = StudyRunner(
            base_config=tiny_run_config, study_name="crash", backend="shm", max_workers=2
        ).run_all(GRID, resume=path)
        assert len(results) == len(GRID)
        reference = StudyRunner(base_config=tiny_run_config, study_name="crash").run_all(GRID)
        for resumed_run, reference_run in zip(results, reference):
            assert resumed_run.series == reference_run.series
            assert _comparable_metrics(resumed_run) == _comparable_metrics(reference_run)

    def test_failing_run_reports_worker_traceback(self, tiny_run_config):
        # An unknown activation passes config validation but fails inside the
        # worker when the surrogate is built — the error path proper.
        spec = RunSpec(
            name="bad",
            config=tiny_run_config.to_dict(),
            overrides={"activation": "no-such-activation"},
        )
        with pytest.raises(RuntimeError, match="bad"):
            SharedMemoryExecutor(max_workers=1).execute([spec])

    def test_resume_with_shm_backend(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        StudyRunner(base_config=tiny_run_config, study_name="res").run_all(GRID[:3], checkpoint=path)
        results = StudyRunner(
            base_config=tiny_run_config, study_name="res", backend="shm", max_workers=2
        ).run_all(GRID, resume=path)
        assert len(results) == len(GRID)


class TestRunNames:
    def test_duplicate_names_suffixed_with_index(self, tiny_run_config):
        runner = StudyRunner(base_config=tiny_run_config, study_name="dup")
        names = runner.run_names(
            [{"_name": "x"}, {"_name": "x"}, {"_name": "y"}], name_key="_name"
        )
        assert names == ["dup:x", "dup:x#1", "dup:y"]
        assert len(set(names)) == 3

    def test_factor_and_index_names(self, tiny_run_config):
        runner = StudyRunner(base_config=tiny_run_config, study_name="s")
        names = runner.run_names([{"_factor": "sigma", "_value": 1.0, "sigma": 1.0}, {}])
        assert names == ["s:sigma=1.0", "s:1"]


class TestCheckpointResume:
    def test_checkpoint_streams_jsonl(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StudyRunner(base_config=tiny_run_config, study_name="ck")
        results = runner.run_all(GRID[:2], checkpoint=path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == [r.name for r in results]
        assert all("metrics" in line and "series" in line for line in lines)

    def test_resume_skips_completed_runs(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        # A "killed" study: only the first two runs completed.
        interrupted = StudyRunner(base_config=tiny_run_config, study_name="res")
        interrupted.run_all(GRID[:2], checkpoint=path)

        executed = []
        resumed = StudyRunner(
            base_config=tiny_run_config, study_name="res", on_result=lambda r: executed.append(r.name)
        )
        results = resumed.run_all(GRID, resume=path)

        # Only the remaining configurations were executed...
        full_names = resumed.run_names(GRID)
        assert executed == full_names[2:]
        # ...and the final results cover the whole study, in order, identical
        # to an uninterrupted run.
        reference = StudyRunner(base_config=tiny_run_config, study_name="res").run_all(GRID)
        assert [r.name for r in results] == [r.name for r in reference] == full_names
        for resumed_run, reference_run in zip(results, reference):
            assert resumed_run.series == reference_run.series
            assert _comparable_metrics(resumed_run) == _comparable_metrics(reference_run)
        # The checkpoint file now holds every run (resume appends to it).
        assert len(JsonlCheckpoint(path).load()) == len(GRID)

    def test_resume_with_process_backend(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        StudyRunner(base_config=tiny_run_config, study_name="res").run_all(GRID[:3], checkpoint=path)
        results = StudyRunner(
            base_config=tiny_run_config, study_name="res", backend="process", max_workers=2
        ).run_all(GRID, resume=path)
        assert len(results) == len(GRID)

    def test_truncated_checkpoint_line_tolerated(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StudyRunner(base_config=tiny_run_config, study_name="trunc")
        runner.run_all(GRID[:2], checkpoint=path)
        # Simulate a crash mid-write: chop the final line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        completed = JsonlCheckpoint(path).load()
        assert len(completed) == 1  # the intact line survives

    def test_missing_checkpoint_is_empty(self, tmp_path):
        assert JsonlCheckpoint(tmp_path / "absent.jsonl").load() == {}

    def test_resume_with_changed_base_config_reexecutes(self, tiny_run_config, tmp_path):
        from dataclasses import replace

        path = tmp_path / "study.jsonl"
        StudyRunner(base_config=tiny_run_config, study_name="res").run_all(GRID[:1], checkpoint=path)
        # Same names, seed, workload, and overrides — but a different base
        # config (a key the overrides never mention). The fingerprint catches it.
        executed = []
        changed = StudyRunner(
            base_config=replace(tiny_run_config, max_iterations=tiny_run_config.max_iterations * 2),
            study_name="res",
            on_result=lambda r: executed.append(r.name),
        )
        changed.run_all(GRID[:1], resume=path)
        assert len(executed) == 1

    def test_legacy_record_without_digest_matches_on_fallback(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StudyRunner(base_config=tiny_run_config, study_name="res")
        runner.run_all(GRID[:1], checkpoint=path)
        # Strip the digest, simulating a checkpoint written before it existed.
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        for line in lines:
            line["digest"] = ""
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        executed = []
        StudyRunner(
            base_config=tiny_run_config, study_name="res", on_result=lambda r: executed.append(r.name)
        ).run_all(GRID[:1], resume=path)
        assert executed == []

    def test_resume_with_changed_seed_reexecutes(self, tiny_run_config, tmp_path):
        from dataclasses import replace

        path = tmp_path / "study.jsonl"
        StudyRunner(base_config=tiny_run_config, study_name="res").run_all(GRID[:2], checkpoint=path)

        executed = []
        reseeded = StudyRunner(
            base_config=replace(tiny_run_config, seed=tiny_run_config.seed + 1),
            study_name="res",
            on_result=lambda r: executed.append(r.name),
        )
        results = reseeded.run_all(GRID[:2], resume=path)
        # Same names, but the checkpointed records carry the old seed — they
        # must not be relabeled as the new study's results.
        assert len(executed) == 2
        assert all(r.seed == tiny_run_config.seed + 1 for r in results)

    def test_resume_with_changed_overrides_reexecutes(self, tiny_run_config, tmp_path):
        path = tmp_path / "study.jsonl"
        runner = StudyRunner(base_config=tiny_run_config, study_name="res")
        runner.run_all([{"_name": "a", "sigma": 1.0}], name_key="_name", checkpoint=path)
        executed = []
        changed = StudyRunner(
            base_config=tiny_run_config, study_name="res", on_result=lambda r: executed.append(r.name)
        )
        changed.run_all([{"_name": "a", "sigma": 9.0}], name_key="_name", resume=path)
        assert executed == ["res:a"]

    def test_separate_checkpoint_seeded_with_resumed_records(self, tiny_run_config, tmp_path):
        old = tmp_path / "old.jsonl"
        new = tmp_path / "new.jsonl"
        StudyRunner(base_config=tiny_run_config, study_name="res").run_all(GRID[:2], checkpoint=old)
        StudyRunner(base_config=tiny_run_config, study_name="res").run_all(
            GRID, checkpoint=new, resume=old
        )
        # The new file stands alone: it holds the spliced-in old runs plus
        # the newly executed ones, so resuming from it skips everything.
        assert len(JsonlCheckpoint(new).load()) == len(GRID)
        executed = []
        StudyRunner(
            base_config=tiny_run_config, study_name="res", on_result=lambda r: executed.append(r.name)
        ).run_all(GRID, resume=new)
        assert executed == []


class TestExecuteSpec:
    def test_record_is_self_describing(self, tiny_run_config):
        spec = RunSpec(
            name="desc",
            config=tiny_run_config.to_dict(),
            overrides={"seed": 9},
        )
        record, result = execute_spec(spec)
        assert record.workload == "heat2d"
        assert record.seed == 9
        assert result.config.seed == 9

    def test_study_results_round_trip_preserves_engine_fields(self, tiny_run_config, tmp_path):
        results = StudyRunner(base_config=tiny_run_config, study_name="rt").run_all(GRID[:1])
        path = results.save_json(tmp_path / "rt.json")
        loaded = StudyResults.load_json(path)
        assert loaded.runs[0].workload == "heat2d"
        assert loaded.runs[0].seed == tiny_run_config.seed
