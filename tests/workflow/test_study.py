"""Tests for the study runner (the Snakemake substitute)."""

from __future__ import annotations

import pytest

from repro.melissa.run import OnlineTrainingConfig
from repro.workflow.study import StudyRunner, apply_overrides


class TestApplyOverrides:
    def test_run_level_overrides(self, tiny_run_config):
        config = apply_overrides(tiny_run_config, {"hidden_size": 32, "n_hidden_layers": 2})
        assert config.hidden_size == 32
        assert config.n_hidden_layers == 2
        # Untouched fields preserved.
        assert config.n_simulations == tiny_run_config.n_simulations

    def test_breed_level_overrides(self, tiny_run_config):
        config = apply_overrides(tiny_run_config, {"sigma": 3.0, "period": 7, "r_start": 0.2})
        assert config.breed.sigma == 3.0
        assert config.breed.period == 7
        assert config.breed.r_start == pytest.approx(0.2)
        # Non-overridden Breed values preserved.
        assert config.breed.window == tiny_run_config.breed.window

    def test_metadata_keys_ignored(self, tiny_run_config):
        config = apply_overrides(tiny_run_config, {"_factor": "sigma", "_value": 3.0, "sigma": 3.0})
        assert config.breed.sigma == 3.0

    def test_unknown_key_rejected(self, tiny_run_config):
        with pytest.raises(KeyError):
            apply_overrides(tiny_run_config, {"not_a_field": 1})

    def test_no_overrides_returns_equivalent_config(self, tiny_run_config):
        config = apply_overrides(tiny_run_config, {})
        assert isinstance(config, OnlineTrainingConfig)
        assert config.breed == tiny_run_config.breed


class TestStudyRunner:
    def test_run_one_produces_metrics_and_series(self, tiny_run_config):
        runner = StudyRunner(base_config=tiny_run_config, study_name="unit")
        record, result = runner.run_one("unit:0", {"hidden_size": 8})
        assert record.name == "unit:0"
        for key in ("final_train_loss", "final_validation_loss", "overfit_gap", "elapsed_seconds"):
            assert key in record.metrics
        assert len(record.series["train_losses"]) == len(record.series["train_iterations"])
        assert result.method in ("Breed", "Random")

    def test_run_all_with_factor_names(self, tiny_run_config):
        runner = StudyRunner(base_config=tiny_run_config, study_name="fig3b")
        configs = [
            {"_factor": "sigma", "_value": 1.0, "sigma": 1.0},
            {"_factor": "sigma", "_value": 25.0, "sigma": 25.0},
        ]
        results = runner.run_all(configs)
        assert len(results) == 2
        assert results.runs[0].name == "fig3b:sigma=1.0"

    def test_on_result_callback(self, tiny_run_config):
        seen = []
        runner = StudyRunner(base_config=tiny_run_config, study_name="cb", on_result=seen.append)
        runner.run_one("cb:0", {})
        assert len(seen) == 1

    def test_shared_solver_and_validation_cached(self, tiny_run_config):
        runner = StudyRunner(base_config=tiny_run_config, study_name="cache")
        assert runner.shared_solver() is runner.shared_solver()
        assert runner.shared_validation_set() is runner.shared_validation_set()

    def test_validation_disabled(self, tiny_run_config):
        from dataclasses import replace

        config = replace(tiny_run_config, n_validation_trajectories=0)
        runner = StudyRunner(base_config=config, study_name="noval")
        assert runner.shared_validation_set() is None
