"""Documentation contract: intra-repo links resolve, doc examples execute.

Mirrors the CI docs job (``scripts/check_docs.py``) inside the tier-1 suite
so stale links or drifted examples fail fast, locally.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_docs import (  # noqa: E402
    DOCTESTED,
    check_links,
    markdown_files,
    run_doctests,
)


def test_docs_tree_exists():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "WORKLOADS.md").is_file()


def test_readme_links_the_docs_tree():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/WORKLOADS.md" in readme


def test_intra_repo_markdown_links_resolve():
    paths = markdown_files()
    assert any(p.name == "ARCHITECTURE.md" for p in paths)
    broken = check_links(paths)
    assert not broken, f"broken relative links: {broken}"


def test_workloads_guide_examples_execute():
    assert "docs/WORKLOADS.md" in DOCTESTED
    failures = run_doctests()
    assert not failures, f"doc examples failed: {failures}"


def test_architecture_doc_names_real_modules():
    """Module pointers in ARCHITECTURE.md must reference importable modules."""
    import importlib
    import re

    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
    modules = sorted(set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text)))
    assert len(modules) > 10  # the doc is a map; it must actually point places
    for name in modules:
        candidate = name
        # trailing attribute references (repro.api.config.OnlineTrainingConfig
        # style) are resolved by importing the longest importable prefix
        while candidate:
            try:
                importlib.import_module(candidate)
                break
            except ModuleNotFoundError:
                candidate = candidate.rpartition(".")[0]
        assert candidate, f"ARCHITECTURE.md references unknown module {name!r}"
