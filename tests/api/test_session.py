"""End-to-end tests of TrainingSession: phases, hooks and new workloads."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.api import OnlineTrainingConfig, TrainingSession
from repro.breed.samplers import BreedConfig
from repro.melissa.run import run_online_training
from repro.sampling.bounds import HEAT1D_BOUNDS


def _make_heat1d_config() -> OnlineTrainingConfig:
    """The canonical fast 1-D workload configuration with steering enabled."""
    return OnlineTrainingConfig(
        workload="heat1d",
        breed=BreedConfig(sigma=25.0, period=15, window=40, r_start=0.5, r_end=0.7, r_breakpoint=2),
        workload_options={"n_points": 16, "n_timesteps": 8},
        n_simulations=24,
        hidden_size=8,
        batch_size=16,
        job_limit=4,
        timesteps_per_tick=2,
        train_iterations_per_tick=2,
        reservoir_capacity=200,
        reservoir_watermark=30,
        max_iterations=120,
        validation_period=30,
        n_validation_trajectories=4,
        seed=11,
    )


@pytest.fixture
def heat1d_config() -> OnlineTrainingConfig:
    return _make_heat1d_config()


class TestHeat1DEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return TrainingSession(_make_heat1d_config()).run()

    def test_completes_iteration_budget(self, result):
        assert result.history.train_iterations[-1] == 120
        assert result.workload == "heat1d"

    def test_validation_loss_decreases(self, result):
        losses = result.history.validation_losses
        assert len(losses) >= 3
        assert losses[-1] < losses[0]
        assert np.isfinite(losses[-1])

    def test_parameters_respect_1d_bounds(self, result):
        assert result.executed_parameters.shape == (24, 3)
        assert HEAT1D_BOUNDS.contains_all(result.executed_parameters)

    def test_model_geometry_matches_workload(self, result):
        assert result.model.config.input_dim == 4
        assert result.model.config.output_dim == 16

    def test_steering_happened(self, result):
        assert len(result.steering_records) >= 1


class TestAnalyticWorkload:
    def test_analytic_end_to_end(self):
        config = OnlineTrainingConfig(
            workload="analytic",
            workload_options={"n_points": 12, "n_timesteps": 6},
            n_simulations=10,
            hidden_size=8,
            batch_size=16,
            job_limit=4,
            reservoir_capacity=120,
            reservoir_watermark=20,
            timesteps_per_tick=2,
            train_iterations_per_tick=2,
            max_iterations=50,
            validation_period=20,
            n_validation_trajectories=3,
            seed=4,
        )
        result = TrainingSession(config).run()
        assert result.workload == "analytic"
        assert result.history.train_iterations[-1] == 50
        assert np.isfinite(result.final_validation_loss)


class TestWrapperEquivalence:
    def test_run_online_training_equals_session_run(self, heat1d_config):
        a = run_online_training(heat1d_config)
        b = TrainingSession(heat1d_config).run()
        np.testing.assert_array_equal(a.executed_parameters, b.executed_parameters)
        np.testing.assert_allclose(a.history.train_losses, b.history.train_losses)
        np.testing.assert_allclose(a.history.validation_losses, b.history.validation_losses)
        assert a.n_ticks == b.n_ticks
        assert a.transport_bytes == b.transport_bytes

    def test_heat2d_default_workload_reproducible(self):
        config = OnlineTrainingConfig(
            n_simulations=12,
            hidden_size=8,
            batch_size=16,
            job_limit=4,
            reservoir_capacity=120,
            reservoir_watermark=24,
            max_iterations=30,
            validation_period=15,
            n_validation_trajectories=2,
            seed=5,
            heat=replace(OnlineTrainingConfig().heat, grid_size=6, n_timesteps=5),
        )
        a = run_online_training(config)
        b = run_online_training(config)
        np.testing.assert_allclose(a.history.train_losses, b.history.train_losses)


class TestPhases:
    def test_manual_phase_stepping(self, heat1d_config):
        session = TrainingSession(heat1d_config)
        started = session.submit()
        assert started, "first submit must start at least one client"
        produced = session.produce()
        assert produced > 0
        received = session.receive()
        assert received == produced
        # Below the watermark no training happens yet.
        assert session.train() == [] or session.server.ready
        assert not session.should_stop()

    def test_tick_drives_all_phases(self, heat1d_config):
        session = TrainingSession(heat1d_config)
        alive = True
        while alive and session.n_ticks < 1000:
            alive = session.tick()
        assert session.server.iteration == heat1d_config.max_iterations
        result = session.result()
        assert result.n_ticks == session.n_ticks


class TestHooks:
    def test_on_tick_called_every_tick(self, heat1d_config):
        session = TrainingSession(heat1d_config)
        ticks = []
        session.add_hook("tick", lambda s: ticks.append(s.n_ticks))
        result = session.run()
        assert ticks == list(range(1, result.n_ticks + 1))

    def test_on_validation_sees_every_point(self, heat1d_config):
        session = TrainingSession(heat1d_config)
        seen = []
        session.add_hook("validation", lambda s, iteration, loss: seen.append((iteration, loss)))
        result = session.run()
        assert [it for it, _ in seen] == list(result.history.validation_iterations)
        assert [loss for _, loss in seen] == list(result.history.validation_losses)

    def test_on_steering_sees_every_record(self, heat1d_config):
        session = TrainingSession(heat1d_config)
        seen = []
        session.add_hook("steering", lambda s, record: seen.append(record))
        result = session.run()
        assert len(seen) == len(result.steering_records) >= 1
        assert [r.iteration for r in seen] == [r.iteration for r in result.steering_records]

    def test_unknown_hook_event_rejected(self, heat1d_config):
        session = TrainingSession(heat1d_config)
        with pytest.raises(KeyError):
            session.add_hook("bogus", lambda s: None)


class TestStudyRunnerIntegration:
    @pytest.mark.parametrize("workload", ["heat1d", "analytic"])
    def test_study_runner_drives_new_workloads(self, workload):
        from repro.workflow.study import StudyRunner

        base = OnlineTrainingConfig(
            workload=workload,
            workload_options={"n_points": 12, "n_timesteps": 6},
            n_simulations=8,
            hidden_size=8,
            batch_size=16,
            job_limit=4,
            reservoir_capacity=120,
            reservoir_watermark=20,
            timesteps_per_tick=2,
            train_iterations_per_tick=2,
            max_iterations=30,
            validation_period=15,
            n_validation_trajectories=2,
            seed=1,
        )
        runner = StudyRunner(base_config=base, study_name=workload)
        results = runner.run_all([{"hidden_size": 8}, {"method": "random"}])
        assert len(results) == 2
        for run in results.runs:
            assert np.isfinite(run.metric("final_validation_loss"))

    def test_workload_override_through_apply_overrides(self):
        from repro.workflow.study import apply_overrides

        base = OnlineTrainingConfig()
        config = apply_overrides(base, {"workload": "heat1d", "sigma_decrement": 0.5})
        assert config.workload == "heat1d"
        # sigma_decrement is a BreedConfig field that the old field-by-field
        # rebuild silently dropped; dataclasses.replace keeps it.
        assert config.breed.sigma_decrement == 0.5
        assert config.breed.period == base.breed.period

    def test_workload_override_gets_its_own_solver(self):
        """A per-run workload override must not inherit the base's solver."""
        from repro.workflow.study import StudyRunner

        base = OnlineTrainingConfig(
            heat=replace(OnlineTrainingConfig().heat, grid_size=6, n_timesteps=5),
            n_simulations=8,
            hidden_size=8,
            batch_size=16,
            job_limit=4,
            reservoir_capacity=120,
            reservoir_watermark=20,
            timesteps_per_tick=2,
            train_iterations_per_tick=2,
            max_iterations=20,
            validation_period=10,
            n_validation_trajectories=2,
            seed=1,
        )
        runner = StudyRunner(base_config=base, study_name="mixed")
        record, result = runner.run_one(
            "mixed:heat1d", {"workload": "heat1d", "workload_options": {"n_points": 10, "n_timesteps": 4}}
        )
        assert result.workload == "heat1d"
        assert result.executed_parameters.shape[1] == 3
        assert np.isfinite(record.metric("final_validation_loss"))


class TestBoundsPlumbing:
    def test_custom_3dim_bounds_respected_by_1d_workloads(self):
        from repro.sampling.bounds import ParameterBounds

        custom = ParameterBounds(low=(200.0,) * 3, high=(300.0,) * 3, names=("T0", "Tl", "Tr"))
        for name in ("heat1d", "analytic"):
            config = OnlineTrainingConfig(workload=name, bounds=custom)
            assert config.build_workload().bounds == custom

    def test_default_5dim_bounds_fall_back_to_heat1d_box(self):
        config = OnlineTrainingConfig(workload="heat1d")
        assert config.build_workload().bounds == HEAT1D_BOUNDS

    def test_explicit_wrong_dim_bounds_rejected_loudly(self):
        from repro.sampling.bounds import ParameterBounds

        custom_5d = ParameterBounds(low=(150.0,) * 5, high=(450.0,) * 5)
        with pytest.raises(ValueError, match="3 parameters"):
            OnlineTrainingConfig(workload="heat1d", bounds=custom_5d).build_workload()

    def test_result_workload_reports_registry_key(self):
        from repro.api import register_workload
        from repro.api.workloads import Heat1DWorkload
        from repro.solvers.heat1d import Heat1DConfig

        register_workload(
            "test-key-echo",
            lambda config: Heat1DWorkload(heat=Heat1DConfig(n_points=8, n_timesteps=4)),
            overwrite=True,
        )
        config = OnlineTrainingConfig(
            workload="test-key-echo",
            n_simulations=4,
            batch_size=8,
            job_limit=2,
            reservoir_capacity=60,
            reservoir_watermark=10,
            max_iterations=5,
            n_validation_trajectories=0,
            seed=0,
        )
        result = TrainingSession(config).run()
        assert result.workload == "test-key-echo"

    def test_custom_bounds_drive_sampling(self):
        from repro.sampling.bounds import ParameterBounds

        custom = ParameterBounds(low=(200.0,) * 3, high=(300.0,) * 3)
        config = OnlineTrainingConfig(
            workload="heat1d",
            bounds=custom,
            workload_options={"n_points": 8, "n_timesteps": 4},
            n_simulations=6,
            batch_size=8,
            job_limit=2,
            reservoir_capacity=60,
            reservoir_watermark=10,
            max_iterations=10,
            validation_period=5,
            n_validation_trajectories=2,
            seed=0,
        )
        result = TrainingSession(config).run()
        assert custom.contains_all(result.executed_parameters)
