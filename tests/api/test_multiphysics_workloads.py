"""The multi-physics workload family through the registry and the session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import OnlineTrainingConfig, TrainingSession, workload_names
from repro.api.workloads import (
    AdvectionDiffusion1DWorkload,
    AdvectionDiffusion2DWorkload,
    BurgersWorkload,
    FisherKPPWorkload,
)
from repro.sampling.bounds import (
    ADVECTION1D_BOUNDS,
    ADVECTION2D_BOUNDS,
    BURGERS_BOUNDS,
    FISHER_BOUNDS,
    ParameterBounds,
)

NEW_WORKLOADS = ["advection1d", "advection2d", "burgers", "fisher"]


def tiny_config(workload: str, **overrides) -> OnlineTrainingConfig:
    from repro.solvers.heat2d import Heat2DConfig

    kwargs = dict(
        workload=workload,
        heat=Heat2DConfig(grid_size=8, n_timesteps=6),
        n_simulations=12,
        hidden_size=8,
        batch_size=16,
        job_limit=4,
        timesteps_per_tick=2,
        train_iterations_per_tick=2,
        reservoir_capacity=150,
        reservoir_watermark=20,
        max_iterations=40,
        validation_period=20,
        n_validation_trajectories=3,
        seed=11,
    )
    kwargs.update(overrides)
    return OnlineTrainingConfig(**kwargs)


class TestRegistry:
    def test_all_families_are_registered(self):
        names = workload_names()
        for name in NEW_WORKLOADS:
            assert name in names

    def test_factories_build_the_right_workload(self):
        expected = {
            "advection1d": AdvectionDiffusion1DWorkload,
            "advection2d": AdvectionDiffusion2DWorkload,
            "burgers": BurgersWorkload,
            "fisher": FisherKPPWorkload,
        }
        for name, cls in expected.items():
            workload = tiny_config(name).build_workload()
            assert isinstance(workload, cls)
            assert workload.name == name

    def test_resolution_derives_from_heat_knobs(self):
        workload = tiny_config("burgers").build_workload()
        assert workload.output_dim == 8
        assert workload.n_timesteps == 6
        assert tiny_config("advection2d").build_workload().output_dim == 64

    def test_workload_options_override_discretisation(self):
        config = tiny_config("fisher", workload_options={"n_points": 20, "dt": 0.02})
        workload = config.build_workload()
        assert workload.output_dim == 20
        assert workload.fisher.dt == 0.02

    def test_cfl_violating_options_raise_the_solver_error(self):
        config = tiny_config("advection1d", workload_options={"n_points": 256, "dt": 0.05})
        with pytest.raises(ValueError, match="CFL violation"):
            config.build_workload()


class TestBoundsResolution:
    def test_default_heat2d_bounds_resolve_to_canonical_boxes(self):
        canonical = {
            "advection1d": ADVECTION1D_BOUNDS,
            "advection2d": ADVECTION2D_BOUNDS,
            "burgers": BURGERS_BOUNDS,
            "fisher": FISHER_BOUNDS,
        }
        for name, bounds in canonical.items():
            assert tiny_config(name).build_workload().bounds == bounds

    def test_custom_bounds_are_honoured(self):
        custom = ParameterBounds(low=(0.9, 0.3, 0.3), high=(1.1, 0.5, 0.35))
        workload = tiny_config("burgers", bounds=custom).build_workload()
        assert workload.bounds == custom

    def test_wrong_dimensional_bounds_rejected(self):
        bad = ParameterBounds(low=(0.0, 0.0), high=(1.0, 1.0))
        with pytest.raises(ValueError, match="takes 4 parameters"):
            tiny_config("advection2d", bounds=bad).build_workload()


class TestScalers:
    def test_output_range_is_the_field_range_not_the_parameter_range(self):
        scalers = tiny_config("advection1d").build_workload().build_scalers()
        assert scalers.output_scaler.low[0] == 0.0
        assert scalers.output_scaler.high[0] == ADVECTION1D_BOUNDS.high[0]

        scalers = tiny_config("burgers").build_workload().build_scalers()
        assert scalers.output_scaler.low[0] == BURGERS_BOUNDS.low[1]
        assert scalers.output_scaler.high[0] == BURGERS_BOUNDS.high[0]

        scalers = tiny_config("fisher").build_workload().build_scalers()
        assert (scalers.output_scaler.low[0], scalers.output_scaler.high[0]) == (0.0, 1.0)

    def test_encoded_fields_land_in_unit_range(self):
        for name in NEW_WORKLOADS:
            workload = tiny_config(name).build_workload()
            solver = workload.build_solver()
            scalers = workload.build_scalers()
            params = workload.bounds.center
            for field in solver.steps(params):
                encoded = scalers.encode_output(field)
                assert encoded.min() >= -1e-9, name
                assert encoded.max() <= 1.0 + 1e-9, name


class TestEndToEnd:
    @pytest.mark.parametrize("workload", NEW_WORKLOADS)
    def test_session_trains_on_each_workload(self, workload):
        config = tiny_config(workload)
        session = TrainingSession(config)
        result = session.run()
        assert result.workload == workload
        assert result.history.train_losses, workload
        assert np.isfinite(result.final_validation_loss)

    def test_config_roundtrip_preserves_workload(self):
        config = tiny_config("burgers", workload_options={"nu": 0.02})
        rebuilt = OnlineTrainingConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.build_workload().burgers.nu == 0.02

    @pytest.mark.parametrize("workload", ["advection1d", "burgers", "fisher"])
    def test_runs_are_deterministic(self, workload):
        first = TrainingSession(tiny_config(workload)).run()
        second = TrainingSession(tiny_config(workload)).run()
        assert first.history.train_losses == second.history.train_losses
        assert first.history.validation_losses == second.history.validation_losses
        np.testing.assert_array_equal(first.executed_parameters, second.executed_parameters)
