"""Tests for the string registries behind the pluggable API."""

from __future__ import annotations

import pytest

from repro.api import registry as reg
from repro.api.registry import Registry


class TestRegistry:
    def test_register_and_get(self):
        r = Registry("thing")
        r.register("alpha", lambda: "a")
        assert r.get("alpha")() == "a"
        assert "alpha" in r
        assert r.names() == ["alpha"]

    def test_keys_are_case_insensitive(self):
        r = Registry("thing")
        r.register("Alpha", lambda: "a")
        assert r.get("ALPHA")() == "a"

    def test_unknown_key_raises_with_available_names(self):
        r = Registry("thing")
        r.register("alpha", lambda: "a")
        with pytest.raises(KeyError, match=r"unknown thing 'beta'.*alpha"):
            r.get("beta")

    def test_duplicate_registration_rejected(self):
        r = Registry("thing")
        r.register("alpha", lambda: "a")
        with pytest.raises(ValueError, match="already registered"):
            r.register("alpha", lambda: "b")

    def test_overwrite_allows_replacement(self):
        r = Registry("thing")
        r.register("alpha", lambda: "a")
        r.register("alpha", lambda: "b", overwrite=True)
        assert r.get("alpha")() == "b"

    def test_decorator_form(self):
        r = Registry("thing")

        @r.register("alpha")
        def factory():
            return "decorated"

        assert r.get("alpha") is factory

    def test_invalid_keys_rejected(self):
        r = Registry("thing")
        with pytest.raises(TypeError):
            r.register("", lambda: None)
        with pytest.raises(TypeError):
            r.register(3, lambda: None)  # type: ignore[arg-type]
        assert 3 not in r


class TestDefaultRegistrations:
    def test_builtin_workloads_registered(self):
        assert {"heat2d", "heat1d", "analytic"} <= set(reg.workload_names())

    def test_builtin_samplers_registered(self):
        assert set(reg.sampler_names()) >= {"breed", "random"}

    def test_builtin_activations_registered(self):
        assert set(reg.activation_names()) >= {"relu", "tanh", "leaky_relu"}

    def test_get_workload_unknown_lists_options(self):
        with pytest.raises(KeyError, match="heat2d"):
            reg.get_workload("does-not-exist")

    def test_activation_factories_build_modules(self):
        from repro import nn

        assert isinstance(reg.get_activation("relu")(), nn.ReLU)
        assert isinstance(reg.get_activation("tanh")(), nn.Tanh)


class TestCustomWorkloadRegistration:
    def test_registered_workload_usable_from_config(self):
        from repro.api import OnlineTrainingConfig
        from repro.api.workloads import Heat1DWorkload
        from repro.solvers.heat1d import Heat1DConfig

        reg.register_workload(
            "test-tiny-1d",
            lambda config: Heat1DWorkload(heat=Heat1DConfig(n_points=8, n_timesteps=4)),
            overwrite=True,
        )
        config = OnlineTrainingConfig(workload="test-tiny-1d")
        workload = config.build_workload()
        assert workload.output_dim == 8
        assert workload.bounds.dim == 3
        assert config.surrogate_config.input_dim == 4

    def test_unknown_workload_rejected_at_config_time(self):
        from repro.api import OnlineTrainingConfig

        with pytest.raises(ValueError, match="workload"):
            OnlineTrainingConfig(workload="no-such-workload")

    def test_unknown_method_rejected_at_config_time(self):
        from repro.api import OnlineTrainingConfig

        with pytest.raises(ValueError, match="method"):
            OnlineTrainingConfig(method="no-such-sampler")
