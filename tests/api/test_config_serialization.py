"""Round-trip tests for OnlineTrainingConfig.to_dict / from_dict."""

from __future__ import annotations

import json

import pytest

from repro.api import OnlineTrainingConfig
from repro.breed.samplers import BreedConfig
from repro.sampling.bounds import ParameterBounds
from repro.solvers.heat2d import Heat2DConfig


class TestToDict:
    def test_default_config_is_json_compatible(self):
        data = OnlineTrainingConfig().to_dict()
        text = json.dumps(data)  # raises on non-JSON values
        assert json.loads(text) == data

    def test_nested_sections_present(self):
        data = OnlineTrainingConfig().to_dict()
        assert data["workload"] == "heat2d"
        assert data["method"] == "breed"
        assert data["breed"]["period"] == BreedConfig().period
        assert data["heat"]["grid_size"] == 12
        assert data["bounds"]["low"] == [100.0] * 5
        assert data["workload_options"] == {}


class TestRoundTrip:
    def test_default_round_trip(self):
        config = OnlineTrainingConfig()
        assert OnlineTrainingConfig.from_dict(config.to_dict()) == config

    def test_customised_round_trip(self):
        config = OnlineTrainingConfig(
            method="random",
            workload="heat1d",
            breed=BreedConfig(sigma=5.0, period=25, window=40),
            heat=Heat2DConfig(grid_size=8, n_timesteps=6),
            bounds=ParameterBounds(low=(0.0, 1.0), high=(2.0, 3.0), names=("a", "b")),
            workload_options={"n_points": 48},
            n_simulations=7,
            hidden_size=4,
            activation="tanh",
            seed=99,
        )
        rebuilt = OnlineTrainingConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.breed == config.breed
        assert rebuilt.bounds == config.bounds
        assert rebuilt.workload_options == {"n_points": 48}

    def test_round_trip_through_json_text(self):
        config = OnlineTrainingConfig(workload="analytic", workload_options={"n_modes": 32})
        rebuilt = OnlineTrainingConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_partial_dict_takes_defaults(self):
        rebuilt = OnlineTrainingConfig.from_dict({"seed": 5, "workload": "heat1d"})
        assert rebuilt.seed == 5
        assert rebuilt.workload == "heat1d"
        assert rebuilt.breed == BreedConfig()
        assert rebuilt.n_simulations == OnlineTrainingConfig().n_simulations

    def test_unknown_key_rejected(self):
        with pytest.raises(TypeError):
            OnlineTrainingConfig.from_dict({"not_a_field": 1})

    def test_invalid_values_still_validated(self):
        data = OnlineTrainingConfig().to_dict()
        data["n_simulations"] = 0
        with pytest.raises(ValueError):
            OnlineTrainingConfig.from_dict(data)


class TestWorkloadGeometry:
    def test_heat2d_surrogate_geometry_unchanged(self):
        config = OnlineTrainingConfig()
        assert config.surrogate_config.input_dim == 6
        assert config.surrogate_config.output_dim == config.heat.grid_size**2

    def test_heat1d_surrogate_geometry(self):
        config = OnlineTrainingConfig(workload="heat1d", workload_options={"n_points": 20})
        assert config.surrogate_config.input_dim == 4  # 3 parameters + time
        assert config.surrogate_config.output_dim == 20

    def test_analytic_defaults_derive_from_heat_knobs(self):
        config = OnlineTrainingConfig(workload="analytic", heat=Heat2DConfig(grid_size=9, n_timesteps=7))
        workload = config.build_workload()
        assert workload.output_dim == 9
        assert workload.n_timesteps == 7

    def test_build_sampler_matches_method(self):
        assert OnlineTrainingConfig(method="breed").build_sampler().name == "Breed"
        assert OnlineTrainingConfig(method="random").build_sampler().name == "Random"


class TestHashability:
    def test_config_remains_hashable(self):
        a = OnlineTrainingConfig()
        b = OnlineTrainingConfig()
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_hashable_with_unhashable_option_values(self):
        config = OnlineTrainingConfig(workload="heat1d", workload_options={"weird": [1, 2]})
        assert isinstance(hash(config), int)
        assert config != OnlineTrainingConfig(workload="heat1d")
