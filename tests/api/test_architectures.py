"""Tests for the surrogate-architecture registry and its built-in bodies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.api import (
    OnlineTrainingConfig,
    TrainingSession,
    architecture_names,
    get_architecture,
    register_architecture,
)
from repro.api.registry import ARCHITECTURES
from repro.nn.tensor import Tensor
from repro.solvers.heat2d import Heat2DConfig
from repro.surrogate.model import (
    DirectSurrogate,
    SurrogateConfig,
    build_conv_surrogate,
    build_mlp,
    build_residual_mlp,
    build_surrogate,
)

# Digests of configurations captured before the architecture field existed;
# the default architecture must never change them (study resume, dedupe and
# snapshot validation all compare these fingerprints across versions).
FROZEN_DEFAULT_DIGEST = "0cabaa189b3e0c9a"
FROZEN_HEAT1D_DIGEST = "ec230ce495fe680d"


class TestRegistry:
    def test_builtins_registered(self):
        assert {"mlp", "residual", "conv2d"} <= set(architecture_names())

    def test_get_architecture_resolves_builders(self):
        assert get_architecture("mlp") is build_mlp
        assert get_architecture("residual") is build_residual_mlp
        assert get_architecture("conv2d") is build_conv_surrogate

    def test_unknown_architecture_raises_named_error(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            get_architecture("perceptron-9000")

    def test_user_registration_roundtrip(self):
        name = "test-linear-only"
        try:
            @register_architecture(name)
            def _build(config, rng):
                return nn.Linear(config.input_dim, config.output_dim, rng=rng)

            config = SurrogateConfig(
                input_dim=3, output_dim=4, hidden_size=2, architecture=name
            )
            model = build_surrogate(config, rng=np.random.default_rng(0))
            assert isinstance(model, nn.Linear)
        finally:
            ARCHITECTURES._factories.pop(name, None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_architecture("mlp", build_mlp)


class TestSurrogateConfig:
    def test_default_architecture_is_mlp(self):
        assert SurrogateConfig().architecture == "mlp"

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="unsupported architecture"):
            SurrogateConfig(architecture="nope")

    def test_label_mentions_non_default_architecture(self):
        assert "conv2d" in SurrogateConfig(architecture="conv2d").label
        assert "mlp" not in SurrogateConfig().label


class TestBuilders:
    CONFIG = dict(input_dim=6, output_dim=36, hidden_size=4, n_hidden_layers=2)

    def test_mlp_dispatch_is_bit_identical_to_build_mlp(self):
        config = SurrogateConfig(**self.CONFIG)
        a = build_mlp(config, rng=np.random.default_rng(7))
        b = build_surrogate(config, rng=np.random.default_rng(7))
        for (name_a, p_a), (name_b, p_b) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            assert np.array_equal(p_a.data, p_b.data)

    @pytest.mark.parametrize("architecture", ["mlp", "residual", "conv2d"])
    def test_output_shape_matches_output_dim(self, architecture):
        config = SurrogateConfig(architecture=architecture, **self.CONFIG)
        model = build_surrogate(config, rng=np.random.default_rng(0))
        out = model(Tensor(np.random.default_rng(1).random((3, 6))))
        assert out.shape == (3, 36)

    def test_conv_requires_square_output(self):
        config = SurrogateConfig(
            input_dim=6, output_dim=35, hidden_size=4, architecture="conv2d"
        )
        with pytest.raises(ValueError, match="perfect square"):
            build_surrogate(config, rng=np.random.default_rng(0))

    def test_residual_blocks_present(self):
        config = SurrogateConfig(architecture="residual", **self.CONFIG)
        model = build_surrogate(config, rng=np.random.default_rng(0))
        blocks = [m for m in model if isinstance(m, nn.Residual)]
        assert len(blocks) == self.CONFIG["n_hidden_layers"]

    def test_conv_layers_present(self):
        config = SurrogateConfig(architecture="conv2d", **self.CONFIG)
        model = build_surrogate(config, rng=np.random.default_rng(0))
        convs = [m for m in model if isinstance(m, nn.Conv2d)]
        assert len(convs) == self.CONFIG["n_hidden_layers"] + 1  # trunk + head

    def test_direct_surrogate_keeps_mlp_attribute_name(self):
        # State-dict keys are `mlp.layerN.*` for every architecture — a
        # checkpoint-format contract.
        from repro.api.workloads import Heat2DWorkload

        workload = Heat2DWorkload(heat=Heat2DConfig(grid_size=6, n_timesteps=5))
        model = DirectSurrogate(
            workload.surrogate_config(
                hidden_size=4, n_hidden_layers=1, activation="relu", architecture="residual"
            ),
            workload.build_scalers(),
            rng=np.random.default_rng(0),
        )
        assert all(key.startswith("mlp.") for key in model.state_dict())


class TestConfigPlumbing:
    def test_default_digest_frozen(self):
        assert OnlineTrainingConfig().digest() == FROZEN_DEFAULT_DIGEST

    def test_heat1d_digest_frozen(self):
        config = OnlineTrainingConfig(workload="heat1d", method="random", seed=3)
        assert config.digest() == FROZEN_HEAT1D_DIGEST

    def test_non_default_architecture_changes_digest(self):
        assert OnlineTrainingConfig(architecture="conv2d").digest() != FROZEN_DEFAULT_DIGEST

    def test_to_dict_roundtrip_preserves_architecture(self):
        config = OnlineTrainingConfig(architecture="residual")
        assert OnlineTrainingConfig.from_dict(config.to_dict()) == config

    def test_invalid_architecture_rejected(self):
        with pytest.raises(ValueError, match="architecture must be one of"):
            OnlineTrainingConfig(architecture="nope")

    def test_paper_scale_preserves_architecture(self):
        assert OnlineTrainingConfig(architecture="conv2d").paper_scale().architecture == "conv2d"

    def test_surrogate_config_carries_architecture(self):
        config = OnlineTrainingConfig(architecture="residual")
        assert config.surrogate_config.architecture == "residual"


def _session_config(architecture, **overrides):
    fields = dict(
        workload="heat2d",
        architecture=architecture,
        heat=Heat2DConfig(grid_size=6, n_timesteps=5),
        n_simulations=8,
        max_iterations=30,
        reservoir_watermark=10,
        n_validation_trajectories=4,
        hidden_size=4,
        seed=1,
    )
    fields.update(overrides)
    return OnlineTrainingConfig(**fields)


class TestEndToEnd:
    def test_residual_trains_through_study_engine(self):
        result = TrainingSession(_session_config("residual")).run()
        assert np.isfinite(result.final_train_loss)
        assert np.isfinite(result.final_validation_loss)

    @pytest.mark.slow
    def test_conv_trains_on_stencil_workload(self):
        # The conv surrogate's 3x3 same-padded trunk mirrors the heat2d
        # stencil; it must train end-to-end through the study engine.
        result = TrainingSession(_session_config("conv2d", max_iterations=60)).run()
        assert np.isfinite(result.final_train_loss)
        assert result.final_train_loss < 1.0
        losses = result.history.train_losses
        assert losses[-1] < losses[0]

    def test_conv_run_is_deterministic(self):
        first = TrainingSession(_session_config("conv2d")).run()
        second = TrainingSession(_session_config("conv2d")).run()
        assert first.final_train_loss == second.final_train_loss
        assert np.array_equal(first.history.train_losses, second.history.train_losses)
