"""Tests for the ``repro`` command-line launcher."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.workflow.results import StudyResults


class TestParser:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "fig3a", "fig3b", "cross", "fig4", "fig6", "overhead", "table1",
        }

    def test_backend_resolution(self):
        from repro.cli import _resolve_backend

        parser = build_parser()
        assert _resolve_backend(parser.parse_args(["fig3b"])) == ("serial", None)
        assert _resolve_backend(parser.parse_args(["fig3b", "--jobs", "4"])) == ("process", 4)
        assert _resolve_backend(parser.parse_args(["fig3b", "--jobs", "1"])) == ("serial", 1)
        assert _resolve_backend(
            parser.parse_args(["fig3b", "--backend", "serial", "--jobs", "4"])
        ) == ("serial", 4)

    def test_checkpoint_flags_default_off(self):
        args = build_parser().parse_args(["fig3a"])
        assert args.checkpoint_every is None
        assert args.restore is False
        args = build_parser().parse_args(["fig3a", "--checkpoint-every", "50", "--restore"])
        assert args.checkpoint_every == 50
        assert args.restore is True

    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_experiment_is_an_error(self):
        assert main([]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        from pathlib import Path

        from repro import __version__

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        assert f'version = "{__version__}"' in pyproject.read_text()

    def test_serve_listed_alongside_experiments(self, capsys):
        assert main(["--list"]) == 0
        assert "serve" in capsys.readouterr().out


class TestServeParser:
    def test_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.root == "service"
        assert args.host == "127.0.0.1"
        assert args.port == 8517
        assert args.workers == 1

    def test_overrides(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--root", "/tmp/svc", "--port", "0", "--workers", "3", "--checkpoint-every", "5"]
        )
        assert (args.root, args.port, args.workers, args.checkpoint_every) == (
            "/tmp/svc", 0, 3, 5,
        )


class TestCliRuns:
    def test_table1(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Study (1)" in out
        assert (tmp_path / "table1.txt").exists()

    def test_fig3b_single_factor_writes_results_and_checkpoint(self, tmp_path, capsys):
        assert main([
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--seed", "1", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "sigma" in out
        study = StudyResults.load_json(tmp_path / "fig3b_smoke.json")
        assert len(study) == 2  # SMOKE_FACTORS["sigma"] has two values
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        assert len(checkpoint.read_text().splitlines()) == 2
        # The trailing status line is machine-readable.
        status = json.loads(out.strip().splitlines()[-1])
        assert status["experiment"] == "fig3b"
        assert status["runs"] == 2

    def test_fig3b_resume_from_checkpoint(self, tmp_path, capsys):
        args = ["fig3b", "--scale", "smoke", "--factor", "sigma", "--out", str(tmp_path)]
        assert main(args) == 0
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        first = checkpoint.read_text()
        # Re-invoke with --resume: nothing new is executed or appended.
        assert main(args + ["--resume", str(checkpoint)]) == 0
        assert checkpoint.read_text() == first

    def test_checkpoint_every_writes_session_snapshots(self, tmp_path, capsys):
        args = [
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--out", str(tmp_path), "--checkpoint-every", "30",
        ]
        assert main(args) == 0
        snapshot_root = tmp_path / "fig3b_smoke.runs.jsonl.snapshots"
        run_dirs = sorted(p for p in snapshot_root.iterdir() if p.is_dir())
        assert len(run_dirs) == 2  # one snapshot dir per run
        assert all(any(d.glob("step-*/manifest.json")) for d in run_dirs)

    def test_fresh_invocation_clears_stale_snapshots(self, tmp_path, capsys):
        # A deliberately fresh invocation (no --restore) must not silently
        # resume runs mid-way from the previous invocation's session
        # snapshots — the snapshot dir is cleared along with the JSONL.
        args = [
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--out", str(tmp_path), "--checkpoint-every", "30",
        ]
        assert main(args) == 0
        snapshot_root = tmp_path / "fig3b_smoke.runs.jsonl.snapshots"
        sentinel = snapshot_root / "0000-stale-marker"
        sentinel.mkdir()
        assert main(args) == 0  # fresh: stale snapshot tree is removed first
        assert not sentinel.exists()
        # while --restore keeps the snapshots in place
        assert main(args + ["--restore"]) == 0
        assert snapshot_root.is_dir()

    def test_restore_resumes_default_checkpoint(self, tmp_path, capsys):
        args = [
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--out", str(tmp_path), "--checkpoint-every", "30",
        ]
        assert main(args) == 0
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        first = checkpoint.read_text()
        # --restore implies --resume on the default checkpoint path: the
        # completed runs are spliced in, nothing is re-executed or appended.
        assert main(args + ["--restore"]) == 0
        assert checkpoint.read_text() == first

    def test_fig3b_unknown_factor_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig3b", "--factor", "nope", "--out", str(tmp_path)])

    def test_checkpoint_does_not_accumulate_across_invocations(self, tmp_path, capsys):
        args = ["fig3b", "--scale", "smoke", "--factor", "r_end", "--out", str(tmp_path)]
        assert main(args) == 0
        assert main(args) == 0  # no --resume: fresh invocation, fresh checkpoint
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        assert len(checkpoint.read_text().splitlines()) == 2  # not 4


class TestWorkloadFlag:
    def test_cross_runs_selected_workloads(self, tmp_path, capsys):
        assert main([
            "cross", "--scale", "smoke", "--out", str(tmp_path),
            "--workload", "burgers", "--workload", "fisher",
        ]) == 0
        out = capsys.readouterr().out
        assert "burgers" in out and "fisher" in out
        study = StudyResults.load_json(tmp_path / "cross_smoke.json")
        assert len(study) == 4  # 2 workloads x {breed, random}
        status = json.loads(out.strip().splitlines()[-1])
        assert status["experiment"] == "cross"

    def test_cross_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["cross", "--workload", "nope", "--out", str(tmp_path)])

    def test_cross_accepts_mixed_case_workload_names(self, tmp_path, capsys):
        # the registry is case-insensitive; the CLI validation must be too
        assert main([
            "cross", "--scale", "smoke", "--workload", "Burgers", "--out", str(tmp_path),
        ]) == 0
        study = StudyResults.load_json(tmp_path / "cross_smoke.json")
        assert {run.workload for run in study.runs} == {"burgers"}

    def test_fig3b_runs_against_another_workload(self, tmp_path, capsys):
        assert main([
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--workload", "advection1d", "--out", str(tmp_path),
        ]) == 0
        study = StudyResults.load_json(tmp_path / "fig3b_smoke.json")
        assert {run.workload for run in study.runs} == {"advection1d"}

    def test_single_workload_experiments_reject_several(self, tmp_path):
        with pytest.raises(SystemExit, match="single workload"):
            main([
                "fig3b", "--workload", "burgers", "--workload", "fisher",
                "--out", str(tmp_path),
            ])


class TestTelemetryFlags:
    @pytest.fixture(autouse=True)
    def telemetry_reset(self):
        yield
        from repro import telemetry

        telemetry.disable()

    def test_metrics_flag_writes_exposition(self, tmp_path, capsys):
        assert main([
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--out", str(tmp_path), "--metrics",
        ]) == 0
        status = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        path = tmp_path / "fig3b_smoke.metrics.txt"
        assert status["metrics"] == str(path)
        text = path.read_text()
        assert "# TYPE repro_session_ticks_total counter" in text
        assert "repro_solver_steps_total" in text

    def test_trace_flag_writes_jsonl_spans(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        assert main([
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--out", str(tmp_path), "--trace", str(trace_dir),
        ]) == 0
        status = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert status["trace"] == str(trace_dir)
        files = list(trace_dir.glob("trace-*.jsonl"))
        assert files
        assert any("session.tick" in line for line in files[0].read_text().splitlines())

    def test_flags_off_leave_telemetry_dark(self, tmp_path, capsys):
        from repro import telemetry

        assert main(["table1", "--out", str(tmp_path)]) == 0
        assert not telemetry.metrics_enabled()
        assert not telemetry.tracing_enabled()


class TestDoctor:
    def test_clean_root_is_healthy(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shm segments: 0 orphaned" in out
        assert out.strip().endswith("healthy")

    def test_json_output(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["healthy"] is True
        assert report["orphaned_shm_segments"] == []
        assert report["service_roots"] == []

    def test_stopped_service_root_is_benign(self, tmp_path, capsys):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "server.json").write_text(json.dumps({"url": "http://127.0.0.1:1", "pid": 1}))
        (root / "shutdown.marker").write_text("")
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["service_roots"][0]["status"] == "stopped"

    def test_crashed_service_root_flags_attention(self, tmp_path, capsys):
        root = tmp_path / "svc"
        root.mkdir()
        # Advertised URL nothing listens on, and no clean-stop marker.
        (root / "server.json").write_text(json.dumps({"url": "http://127.0.0.1:1", "pid": 1}))
        assert main(["doctor", str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["service_roots"][0]["status"] == "crashed"
        assert any("repro serve --root" in issue for issue in report["issues"])

    def test_corrupt_server_json_flags_attention(self, tmp_path, capsys):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "server.json").write_text("{not json")
        assert main(["doctor", str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["service_roots"][0]["status"] == "corrupt"

    def test_live_service_root_reported_live(self, tmp_path, capsys):
        from repro.service import StudyService

        service = StudyService(tmp_path / "svc", port=0, n_workers=1).start()
        try:
            assert main(["doctor", str(tmp_path), "--json"]) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["service_roots"][0]["status"] == "live"
        finally:
            service.stop()

    def test_checkpoint_usage_scanned(self, tmp_path, capsys):
        snapshots = tmp_path / "runs.jsonl.snapshots" / "run0" / "step-10"
        snapshots.mkdir(parents=True)
        (snapshots / "manifest.json").write_text("{}")
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        usage = report["checkpoint_usage"][0]
        assert usage["snapshots"] == 1
        assert usage["bytes"] > 0

    def test_doctor_listed_in_experiments_table(self, capsys):
        main(["--list"])
        assert "doctor" in capsys.readouterr().out


class TestDoctorCampaigns:
    """The campaign-manifest probe: finished / running / abandoned roots."""

    @staticmethod
    def _write_manifest(root, pid, *, finished=False, node="train"):
        root.mkdir(parents=True, exist_ok=True)
        events = [
            {"seq": 0, "event": "campaign_started", "pid": pid, "ts": 1.0,
             "campaign": "demo", "digest": "d" * 16, "backend": "serial",
             "resumed": False, "nodes": [node]},
            {"seq": 1, "event": "node_started", "pid": pid, "ts": 2.0,
             "node": node, "attempt": 1},
        ]
        if finished:
            events.append({"seq": 2, "event": "node_finished", "pid": pid,
                           "ts": 3.0, "node": node, "runs": 1})
            events.append({"seq": 3, "event": "campaign_finished", "pid": pid,
                           "ts": 4.0, "campaign": "demo", "states": {node: "done"},
                           "cache_hits": 0, "runs_executed": 1})
        (root / "manifest.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events)
        )

    def test_finished_campaign_is_healthy(self, tmp_path, capsys):
        import os

        self._write_manifest(tmp_path / "camp", os.getpid(), finished=True)
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["campaigns"][0]["status"] == "finished"
        assert report["healthy"] is True

    def test_running_campaign_with_live_pid_is_healthy(self, tmp_path, capsys):
        import os

        self._write_manifest(tmp_path / "camp", os.getpid())
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["campaigns"][0]["status"] == "running"
        assert report["campaigns"][0]["running_nodes"] == ["train"]

    def test_abandoned_campaign_flags_attention_with_resume_hint(self, tmp_path, capsys):
        import subprocess
        import sys

        # a pid guaranteed dead: a subprocess that has already been reaped
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        self._write_manifest(tmp_path / "camp", probe.pid)

        assert main(["doctor", str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        finding = report["campaigns"][0]
        assert finding["status"] == "abandoned"
        assert finding["running_nodes"] == ["train"]
        hint = f"repro campaign --root {tmp_path / 'camp'} --resume"
        assert any(hint in issue for issue in report["issues"])

    def test_abandoned_campaign_in_table_output(self, tmp_path, capsys):
        import subprocess
        import sys

        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        self._write_manifest(tmp_path / "camp", probe.pid)

        assert main(["doctor", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "abandoned" in out
        assert "attention needed" in out.strip().splitlines()[-1]

    def test_non_campaign_jsonl_is_ignored(self, tmp_path, capsys):
        root = tmp_path / "svc" / "jobs" / "j1"
        root.mkdir(parents=True)
        (root / "manifest.jsonl").write_text(
            json.dumps({"seq": 0, "event": "queued", "pid": 1}) + "\n"
        )
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["campaigns"] == []

    def test_real_killed_campaign_is_abandoned_end_to_end(self, tmp_path):
        """A genuinely SIGKILLed `repro campaign` leaves an abandoned root."""
        import json as json_module

        from faults import CrashAt, run_campaign_cli
        from topologies import fanout_spec

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json_module.dumps(fanout_spec()))
        root = tmp_path / "camp"
        rc, _out, _err = run_campaign_cli(
            [spec_file, "--root", root], cwd=tmp_path,
            fault=CrashAt("f1", 0, point="run"),
        )
        assert rc != 0

        from repro.doctor import diagnose

        report = diagnose([tmp_path])
        finding = next(c for c in report["campaigns"] if c["root"] == str(root))
        assert finding["status"] == "abandoned"
        assert any("--resume" in issue for issue in report["issues"])


class TestDoctorShmJson:
    """The original shm-segment probe, exercised through ``--json``."""

    def test_orphaned_segment_reported_in_json(self, tmp_path, capsys):
        from pathlib import Path

        from repro.workflow.shm import SHM_NAME_PREFIX

        shm_root = Path("/dev/shm")
        if not shm_root.is_dir():
            pytest.skip("no /dev/shm on this platform")
        fake = shm_root / f"{SHM_NAME_PREFIX}doctor_test"
        fake.write_bytes(b"\0")
        try:
            assert main(["doctor", str(tmp_path), "--json"]) == 1
            report = json.loads(capsys.readouterr().out)
            assert fake.name in report["orphaned_shm_segments"]
            assert report["healthy"] is False
            assert any(f"/dev/shm/{fake.name}" in issue for issue in report["issues"])
        finally:
            fake.unlink()

    def test_clean_json_report_has_all_probe_keys(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["orphaned_shm_segments"] == []
        assert report["service_roots"] == []
        assert report["checkpoint_usage"] == []
        assert report["campaigns"] == []
        assert report["issues"] == []
        assert report["healthy"] is True
