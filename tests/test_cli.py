"""Tests for the ``repro`` command-line launcher."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.workflow.results import StudyResults


class TestParser:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {"fig3a", "fig3b", "fig4", "fig6", "overhead", "table1"}

    def test_backend_resolution(self):
        from repro.cli import _resolve_backend

        parser = build_parser()
        assert _resolve_backend(parser.parse_args(["fig3b"])) == ("serial", None)
        assert _resolve_backend(parser.parse_args(["fig3b", "--jobs", "4"])) == ("process", 4)
        assert _resolve_backend(parser.parse_args(["fig3b", "--jobs", "1"])) == ("serial", 1)
        assert _resolve_backend(
            parser.parse_args(["fig3b", "--backend", "serial", "--jobs", "4"])
        ) == ("serial", 4)

    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_experiment_is_an_error(self):
        assert main([]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestCliRuns:
    def test_table1(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Study (1)" in out
        assert (tmp_path / "table1.txt").exists()

    def test_fig3b_single_factor_writes_results_and_checkpoint(self, tmp_path, capsys):
        assert main([
            "fig3b", "--scale", "smoke", "--factor", "sigma",
            "--seed", "1", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "sigma" in out
        study = StudyResults.load_json(tmp_path / "fig3b_smoke.json")
        assert len(study) == 2  # SMOKE_FACTORS["sigma"] has two values
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        assert len(checkpoint.read_text().splitlines()) == 2
        # The trailing status line is machine-readable.
        status = json.loads(out.strip().splitlines()[-1])
        assert status["experiment"] == "fig3b"
        assert status["runs"] == 2

    def test_fig3b_resume_from_checkpoint(self, tmp_path, capsys):
        args = ["fig3b", "--scale", "smoke", "--factor", "sigma", "--out", str(tmp_path)]
        assert main(args) == 0
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        first = checkpoint.read_text()
        # Re-invoke with --resume: nothing new is executed or appended.
        assert main(args + ["--resume", str(checkpoint)]) == 0
        assert checkpoint.read_text() == first

    def test_fig3b_unknown_factor_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig3b", "--factor", "nope", "--out", str(tmp_path)])

    def test_checkpoint_does_not_accumulate_across_invocations(self, tmp_path, capsys):
        args = ["fig3b", "--scale", "smoke", "--factor", "r_end", "--out", str(tmp_path)]
        assert main(args) == 0
        assert main(args) == 0  # no --resume: fresh invocation, fresh checkpoint
        checkpoint = tmp_path / "fig3b_smoke.runs.jsonl"
        assert len(checkpoint.read_text().splitlines()) == 2  # not 4
