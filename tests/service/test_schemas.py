"""Wire-schema tests: submission validation and the deduplicating fingerprint."""

from __future__ import annotations

import pytest

from repro.service.schemas import (
    JobSpec,
    SubmissionError,
    job_fingerprint,
    run_digests,
    validate_submission,
)


class TestValidation:
    def test_valid_payload_round_trips(self, make_payload):
        spec = validate_submission(make_payload(n_runs=3))
        assert spec.study_name == "svc-test"
        assert len(spec.configurations) == 3
        assert spec.backend == "serial"
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_non_object_rejected(self):
        with pytest.raises(SubmissionError, match="JSON object"):
            validate_submission([1, 2, 3])

    def test_unknown_top_level_key_rejected(self, make_payload):
        with pytest.raises(SubmissionError, match="unknown submission key"):
            validate_submission(dict(make_payload(), nope=1))

    def test_missing_study_name_rejected(self, make_payload):
        payload = make_payload()
        del payload["study_name"]
        with pytest.raises(SubmissionError, match="study_name"):
            validate_submission(payload)

    def test_empty_configurations_rejected(self, make_payload):
        with pytest.raises(SubmissionError, match="non-empty list"):
            validate_submission(dict(make_payload(), configurations=[]))

    def test_default_configurations_is_one_bare_run(self, make_payload):
        payload = make_payload()
        del payload["configurations"]
        assert validate_submission(payload).configurations == [{}]

    def test_bad_config_key_rejected_at_the_boundary(self, make_payload):
        payload = make_payload()
        payload["config"]["not_a_field"] = 1
        with pytest.raises(SubmissionError, match="invalid config"):
            validate_submission(payload)

    def test_bad_override_key_named_with_index(self, make_payload):
        payload = make_payload()
        payload["configurations"] = [{"hidden_size": 8}, {"bogus_key": 1}]
        with pytest.raises(SubmissionError, match=r"configurations\[1\]"):
            validate_submission(payload)

    def test_unknown_backend_rejected(self, make_payload):
        with pytest.raises(SubmissionError, match="backend"):
            validate_submission(dict(make_payload(), backend="gpu"))

    def test_negative_checkpoint_every_rejected(self, make_payload):
        with pytest.raises(SubmissionError, match="checkpoint_every"):
            validate_submission(dict(make_payload(), checkpoint_every=-1))


class TestFingerprint:
    def test_identical_submissions_fingerprint_identically(self, make_payload):
        assert job_fingerprint(validate_submission(make_payload())) == job_fingerprint(
            validate_submission(make_payload())
        )

    def test_fingerprint_ignores_payload_key_order(self, make_payload):
        payload = make_payload()
        reordered = dict(reversed(list(payload.items())))
        reordered["config"] = dict(reversed(list(payload["config"].items())))
        assert job_fingerprint(validate_submission(payload)) == job_fingerprint(
            validate_submission(reordered)
        )

    def test_fingerprint_changes_with_seed(self, make_payload):
        assert job_fingerprint(validate_submission(make_payload(seed=0))) != job_fingerprint(
            validate_submission(make_payload(seed=1))
        )

    def test_fingerprint_changes_with_study_name(self, make_payload):
        assert job_fingerprint(
            validate_submission(make_payload(study_name="a"))
        ) != job_fingerprint(validate_submission(make_payload(study_name="b")))

    def test_fingerprint_changes_with_run_set(self, make_payload):
        assert job_fingerprint(validate_submission(make_payload(n_runs=2))) != job_fingerprint(
            validate_submission(make_payload(n_runs=3))
        )

    def test_fingerprint_ignores_executor_and_checkpoint_knobs(self, make_payload):
        # backend/max_workers/checkpoint_every change *how* the study runs,
        # never its results — they must not defeat deduplication
        base = validate_submission(make_payload())
        tweaked = validate_submission(
            dict(make_payload(), backend="process", max_workers=2, checkpoint_every=5)
        )
        assert job_fingerprint(base) == job_fingerprint(tweaked)

    def test_run_digests_follow_study_engine_naming(self, make_payload):
        spec = validate_submission(make_payload(n_runs=2))
        assert [name for name, _ in run_digests(spec)] == ["svc-test:0", "svc-test:1"]
