"""Shared fixtures of the study-service tests: tiny studies, live servers."""

from __future__ import annotations

import dataclasses
from typing import Callable

import pytest

from repro.experiments.base import base_config
from repro.service import StudyService


def _tiny_config(seed: int = 0, **overrides):
    config = base_config("smoke", method="breed", seed=seed)
    fields = dict(
        n_simulations=6,
        max_iterations=30,
        n_validation_trajectories=2,
        hidden_size=8,
        n_hidden_layers=1,
    )
    fields.update(overrides)
    return dataclasses.replace(config, **fields)


@pytest.fixture
def make_config() -> Callable:
    """Factory of configs whose runs finish in a fraction of a second."""
    return _tiny_config


@pytest.fixture
def make_payload() -> Callable:
    """Factory of valid submission payloads with ``n_runs`` distinct runs."""

    def factory(seed: int = 0, n_runs: int = 2, study_name: str = "svc-test", **config_overrides):
        return {
            "study_name": study_name,
            "config": _tiny_config(seed=seed, **config_overrides).to_dict(),
            "configurations": [{"hidden_size": 8 + 4 * i} for i in range(n_runs)],
        }

    return factory


@pytest.fixture
def live_service(tmp_path):
    """A started service on an ephemeral port, stopped (cleanly) at teardown."""
    service = StudyService(tmp_path / "svc", port=0, n_workers=1, checkpoint_every=10).start()
    try:
        yield service
    finally:
        service.stop()
