"""Restart-safe resume: interrupted jobs complete with bit-identical results.

These tests drive :class:`~repro.service.worker.Worker` synchronously (no
threads), which makes the interruption point deterministic: the stop event is
set from inside the first ``run_finished`` bookkeeping call, so the worker
re-queues the job with exactly one run checkpointed.  A *fresh* store/worker
over the same directory — a new server process, as far as the on-disk state
can tell — must then complete the job, splice the finished run instead of
re-executing it, and produce results bit-identical to an uninterrupted serial
:class:`~repro.workflow.study.StudyRunner` reference.

The companion real-SIGKILL variant (victim server killed with ``kill -9``
mid-study, restarted, compared against the same reference) lives in
``scripts/service_smoke.py`` and runs in CI.
"""

from __future__ import annotations

import threading

import pytest
from faults import interrupt_after_runs  # tests/campaign/faults.py (see tests/conftest.py)

from repro.service.schemas import validate_submission
from repro.service.store import JobStore
from repro.service.worker import Worker
from repro.workflow.executor import TIMING_METRICS
from repro.workflow.results import StudyResults
from repro.workflow.study import StudyRunner


def _reference_results(spec) -> StudyResults:
    """The uninterrupted serial reference of a submission's study."""
    runner = StudyRunner(base_config=spec.build_base_config(), study_name=spec.study_name)
    return runner.run_all(spec.configurations, name_key=spec.name_key)


def _comparable(results: StudyResults):
    """Everything a run produced except the wall-clock timing metrics."""
    return [
        {
            "name": run.name,
            "config": run.config,
            "workload": run.workload,
            "seed": run.seed,
            "digest": run.digest,
            "metrics": {k: v for k, v in run.metrics.items() if k not in TIMING_METRICS},
            "series": run.series,
        }
        for run in results.runs
    ]


@pytest.fixture
def submitted(tmp_path, make_payload):
    store = JobStore(tmp_path / "svc")
    spec = validate_submission(make_payload(n_runs=3))
    record, _ = store.submit(spec)
    return store, spec, record


class TestInterruptedJobResume:
    def test_crash_restart_resume_is_bit_identical(self, submitted):
        store, spec, record = submitted
        reference = _reference_results(spec)

        # --- first server: interrupted right after the first run finishes
        stop_event = threading.Event()
        interrupt_after_runs(store, stop_event, n_runs=1)
        worker = Worker(store, stop_event, checkpoint_every=8)
        worker.execute(store.claim_next(timeout=0))

        interrupted = store.get(record.id)
        assert interrupted.state == "queued"  # re-queued, not failed/lost
        assert interrupted.runs_done == 1
        first_lines = store.runs_path(record.id).read_text().splitlines()
        assert len(first_lines) == 1  # exactly the finished run is checkpointed

        # --- second server: fresh store/worker over the same directory
        fresh_store = JobStore(store.root)
        assert fresh_store.recover() == []  # clean interruption already re-queued
        worker = Worker(fresh_store, threading.Event(), checkpoint_every=8)
        worker.execute(fresh_store.claim_next(timeout=0))

        final = fresh_store.get(record.id)
        assert final.state == "done"
        lines = fresh_store.runs_path(record.id).read_text().splitlines()
        assert len(lines) == 3  # run #1 was spliced, not re-executed
        assert lines[0] == first_lines[0]

        served = StudyResults.load_json(fresh_store.result_path(record.id))
        assert _comparable(served) == _comparable(reference)

    def test_sigkill_style_crash_is_recovered_then_resumed(self, submitted):
        store, spec, record = submitted
        reference = _reference_results(spec)

        # simulate a hard kill: the job is claimed (state=running on disk)
        # and the first run completes, but the server dies with no cleanup —
        # no requeue, no marker, nothing
        stop_event = threading.Event()
        interrupt_after_runs(store, stop_event, n_runs=1)
        worker = Worker(store, stop_event, checkpoint_every=8)
        claimed = store.claim_next(timeout=0)
        try:
            worker._run_study(claimed)
        except Exception:
            pass
        assert store.get(record.id).state == "running"  # dangling, as after kill -9

        fresh_store = JobStore(store.root)
        assert fresh_store.recover() == [record.id]  # start-up recovery path
        worker = Worker(fresh_store, threading.Event(), checkpoint_every=8)
        worker.execute(fresh_store.claim_next(timeout=0))

        assert fresh_store.get(record.id).state == "done"
        served = StudyResults.load_json(fresh_store.result_path(record.id))
        assert _comparable(served) == _comparable(reference)

    def test_mid_run_session_snapshots_are_written(self, submitted):
        store, spec, record = submitted
        stop_event = threading.Event()
        interrupt_after_runs(store, stop_event, n_runs=1)
        Worker(store, stop_event, checkpoint_every=8).execute(store.claim_next(timeout=0))
        snapshots = store.runs_path(record.id).parent / "runs.jsonl.snapshots"
        run_dirs = sorted(p.name for p in snapshots.iterdir() if p.is_dir())
        assert len(run_dirs) >= 1
        assert any(snapshots.glob("*/step-*/manifest.json"))


class TestWorkerLifecycle:
    def test_completed_job_writes_result_and_marks_done(self, submitted):
        store, spec, record = submitted
        Worker(store, threading.Event(), checkpoint_every=8).execute(
            store.claim_next(timeout=0)
        )
        final = store.get(record.id)
        assert final.state == "done"
        assert final.runs_done == 3
        assert store.result_path(record.id).exists()
        events = [e["event"] for e in store.events(record.id)]
        assert events == [
            "queued", "started", "run_finished", "run_finished", "run_finished", "done",
        ]

    def test_study_blowing_up_marks_failed_not_crash(self, submitted, monkeypatch):
        store, spec, record = submitted

        def explode(self, claimed):
            raise ValueError("solver diverged")

        monkeypatch.setattr(Worker, "_run_study", explode)
        Worker(store, threading.Event(), checkpoint_every=0).execute(
            store.claim_next(timeout=0)
        )
        final = store.get(record.id)
        assert final.state == "failed"
        assert final.error == "ValueError: solver diverged"
        assert [e["event"] for e in store.events(record.id)][-1] == "failed"

    def test_cancel_requested_before_start_cancels_without_running(self, submitted):
        store, spec, record = submitted
        claimed = store.claim_next(timeout=0)
        store.request_cancel(record.id)
        Worker(store, threading.Event(), checkpoint_every=8).execute(claimed)
        assert store.get(record.id).state == "cancelled"
        assert not store.runs_path(record.id).exists()

    def test_cancel_mid_job_stops_at_run_boundary(self, submitted):
        store, spec, record = submitted
        bookkeeping = store.record_run_finished

        def cancel_after_first(job_id, name, metrics):
            bookkeeping(job_id, name, metrics)
            store.request_cancel(job_id)

        store.record_run_finished = cancel_after_first  # type: ignore[method-assign]
        Worker(store, threading.Event(), checkpoint_every=8).execute(
            store.claim_next(timeout=0)
        )
        final = store.get(record.id)
        assert final.state == "cancelled"
        assert len(store.runs_path(record.id).read_text().splitlines()) == 1
