"""Observability surface of the service: /v1/metrics, health fields, job metrics."""

from __future__ import annotations

import re
import urllib.request

import pytest

from repro import telemetry
from repro.service import ServiceClient

pytestmark = pytest.mark.slow  # live servers + real studies (see README testing section)

#: one Prometheus sample line: name, optional {labels}, numeric value
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[+-]?(?:\d+\.?\d*(?:e[+-]?\d+)?|Inf|NaN))$"
)


@pytest.fixture
def client(live_service):
    return ServiceClient(live_service.url, timeout=30.0)


class TestHealth:
    def test_reports_uptime_and_queue_depth(self, client):
        health = client.health()
        assert health["uptime_s"] >= 0.0
        assert health["queue_depth"] == 0
        assert health["status"] == "ok"

    def test_queue_depth_counts_queued_jobs(self, client, make_payload):
        # One worker: saturate it, then everything else queues behind it.
        for seed in range(3):
            payload = make_payload(seed=seed)
            client.submit(payload["study_name"], payload["config"], payload["configurations"])
        health = client.health()
        assert health["queue_depth"] >= 1
        assert health["queue_depth"] == health["jobs"].get("queued", 0)


class TestMetricsEndpoint:
    def test_exposition_is_well_formed(self, client):
        text = client.metrics()
        assert text  # service gauges are always present
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        assert "# TYPE repro_service_uptime_seconds gauge" in text
        assert "repro_service_queue_depth" in text
        assert "repro_service_workers 1" in text

    def test_content_type_is_prometheus_text(self, live_service):
        with urllib.request.urlopen(f"{live_service.url}/v1/metrics", timeout=10) as response:
            assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")

    def test_job_states_exported_as_labeled_gauge(self, client, make_payload):
        payload = make_payload()
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        client.wait(job["id"], timeout=120.0)
        assert 'repro_service_jobs{state="done"} 1' in client.metrics()

    def test_study_counters_flow_into_exposition(self, client, make_payload):
        # The service owns the process-wide registry while it runs, so
        # counters incremented by its in-process study engine show up.
        payload = make_payload()
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        client.wait(job["id"], timeout=120.0)
        text = client.metrics()
        assert "repro_session_ticks_total" in text
        assert "repro_solver_steps_total" in text


class TestPerJobMetrics:
    def test_job_payload_carries_merged_run_counters(self, client, make_payload):
        payload = make_payload(n_runs=2)
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        client.wait(job["id"], timeout=120.0)
        record = client.job(job["id"])
        metrics = record["metrics"]
        assert metrics["repro_session_ticks_total"] > 0
        assert metrics["repro_solver_steps_total"] > 0
        assert not any(key.startswith("_") for key in metrics)

    def test_unfinished_job_has_empty_metrics_dict(self, client, make_payload):
        # Three jobs against one worker: the last is still queued when probed.
        records = []
        for seed in range(3):
            payload = make_payload(seed=seed)
            records.append(
                client.submit(payload["study_name"], payload["config"], payload["configurations"])
            )
        queued = client.job(records[-1]["id"])
        if queued["state"] == "queued":  # worker may already have raced ahead
            assert queued["metrics"] == {}


class TestMetricsOwnership:
    def test_service_releases_global_registry_on_stop(self, tmp_path):
        from repro.service import StudyService

        assert not telemetry.metrics_enabled()
        service = StudyService(tmp_path / "own", port=0, n_workers=1).start()
        try:
            assert telemetry.metrics_enabled()
        finally:
            service.stop()
        assert not telemetry.metrics_enabled()

    def test_service_leaves_foreign_registry_alone(self, tmp_path):
        from repro.service import StudyService

        telemetry.configure(metrics=True)
        registry = telemetry.metrics()
        service = StudyService(tmp_path / "own", port=0, n_workers=1).start()
        try:
            assert telemetry.metrics() is registry
        finally:
            service.stop()
        assert telemetry.metrics_enabled()  # not ours to disable
        telemetry.disable()
