"""End-to-end HTTP tests against a live ephemeral-port service.

One :class:`~repro.service.server.StudyService` per test (the
``live_service`` fixture), driven exclusively through the stdlib
:class:`~repro.service.client.ServiceClient` — the same path external users
take.  Studies here are tiny (seconds per job), so tests wait for real
completions rather than mocking the engine.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import SHUTDOWN_MARKER, ServiceClient, ServiceError

pytestmark = pytest.mark.slow  # live servers + real studies (see README testing section)


@pytest.fixture
def client(live_service):
    return ServiceClient(live_service.url, timeout=30.0)


class TestSubmitAndInspect:
    def test_submit_runs_to_done_with_result(self, client, make_payload):
        payload = make_payload(n_runs=2)
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        assert job["state"] in ("queued", "running")
        assert not job["deduplicated"]
        assert job["runs_total"] == 2

        final = client.wait(job["id"], timeout=120.0)
        assert final["state"] == "done"
        assert final["runs_done"] == 2

        result = client.result(job["id"])
        assert result["study"] == "svc-test"
        assert [run["name"] for run in result["runs"]] == ["svc-test:0", "svc-test:1"]
        assert all("final_train_loss" in run["metrics"] for run in result["runs"])

    def test_duplicate_submission_dedupes_over_http(self, client, make_payload):
        payload = make_payload()
        first = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        second = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        assert second["deduplicated"]
        assert second["id"] == first["id"]
        assert len(client.jobs()) == 1

    def test_jobs_listing_and_single_job_agree(self, client, make_payload):
        payload = make_payload()
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        listed = client.jobs()
        assert [j["id"] for j in listed] == [job["id"]]
        assert client.job(job["id"])["id"] == job["id"]

    def test_health_reports_jobs_and_version(self, client, make_payload):
        from repro import __version__

        payload = make_payload()
        client.submit(payload["study_name"], payload["config"], payload["configurations"])
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["jobs"]["total"] == 1
        assert health["workers"] == 1


class TestProgress:
    def test_events_poll_to_terminal_with_since_cursor(self, client, make_payload):
        payload = make_payload(n_runs=2)
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        client.wait(job["id"], timeout=120.0)

        events = client.events(job["id"])
        names = [e["event"] for e in events]
        assert names == ["queued", "started", "run_finished", "run_finished", "done"]
        # the polling cursor: everything strictly after seq resumes cleanly
        tail = client.events(job["id"], since=events[1]["seq"])
        assert [e["event"] for e in tail] == ["run_finished", "run_finished", "done"]

    def test_stream_yields_jsonl_until_terminal_event(self, client, make_payload):
        payload = make_payload(n_runs=2)
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        streamed = list(client.stream(job["id"]))  # server closes after "done"
        assert [e["event"] for e in streamed] == [
            "queued", "started", "run_finished", "run_finished", "done",
        ]
        assert streamed[2]["run"] == "svc-test:0"
        assert "final_train_loss" in streamed[2]["metrics"]

    def test_stream_with_since_replays_only_the_tail(self, client, make_payload):
        payload = make_payload()
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        client.wait(job["id"], timeout=120.0)
        streamed = list(client.stream(job["id"], since=1))
        assert [e["event"] for e in streamed] == ["run_finished", "run_finished", "done"]


class TestErrors:
    def test_result_is_409_until_done(self, client, make_payload):
        # keep the worker busy so the submitted job stays queued
        blocker = make_payload(seed=99, n_runs=3)
        client.submit(blocker["study_name"], blocker["config"], blocker["configurations"])
        payload = make_payload(n_runs=2)
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409
        client.wait(job["id"], timeout=120.0)
        assert client.result(job["id"])["study"] == "svc-test"

    def test_unknown_job_is_404(self, client):
        for call in (client.job, client.events, client.result, client.cancel):
            with pytest.raises(ServiceError) as excinfo:
                call("no-such-job")
            assert excinfo.value.status == 404

    def test_invalid_submission_is_400_with_reason(self, client, make_payload):
        payload = make_payload()
        payload["config"]["not_a_field"] = 1
        with pytest.raises(ServiceError) as excinfo:
            client.submit(payload["study_name"], payload["config"], payload["configurations"])
        assert excinfo.value.status == 400
        assert "not_a_field" in str(excinfo.value)

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404


class TestCancel:
    def test_cancel_queued_job_over_http(self, client, make_payload):
        # occupy the single worker so the second job is cancellable while queued
        blocker = make_payload(seed=99, n_runs=3)
        blocker_job = client.submit(
            blocker["study_name"], blocker["config"], blocker["configurations"]
        )
        payload = make_payload()
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] in ("cancelled", "queued")
        final = client.wait(job["id"], timeout=120.0)
        assert final["state"] == "cancelled"
        # the blocker is unaffected
        assert client.wait(blocker_job["id"], timeout=120.0)["state"] == "done"


class TestConcurrency:
    def test_concurrent_submits_and_polls(self, client, live_service, make_payload):
        """Many clients at once: distinct jobs all finish, duplicates dedupe."""
        n_threads, results, errors = 6, {}, []

        def hammer(i):
            try:
                local = ServiceClient(live_service.url, timeout=30.0)
                payload = make_payload(seed=i % 3)  # 6 submissions, 3 distinct studies
                job = local.submit(
                    payload["study_name"], payload["config"], payload["configurations"]
                )
                final = local.wait(job["id"], timeout=120.0)
                results[i] = (job["id"], final["state"])
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        assert not errors
        assert len(results) == n_threads
        assert all(state == "done" for _, state in results.values())
        assert len({job_id for job_id, _ in results.values()}) == 3
        assert len(client.jobs()) == 3


class TestShutdown:
    def test_clean_stop_writes_shutdown_marker(self, tmp_path, make_payload):
        from repro.service import StudyService

        service = StudyService(tmp_path / "svc", port=0, n_workers=1).start()
        try:
            assert (service.root / "server.json").exists()
            assert not (service.root / SHUTDOWN_MARKER).exists()
        finally:
            service.stop()
        assert (service.root / SHUTDOWN_MARKER).exists()

    def test_restart_recovers_and_finishes_interrupted_job(self, tmp_path, make_payload):
        """Graceful stop mid-queue → restart → job completes from checkpoints."""
        from repro.service import StudyService

        root = tmp_path / "svc"
        service = StudyService(root, port=0, n_workers=1, checkpoint_every=10).start()
        payload = make_payload(n_runs=3)
        client = ServiceClient(service.url, timeout=30.0)
        job = client.submit(payload["study_name"], payload["config"], payload["configurations"])
        service.stop()  # may interrupt mid-study; completed runs are checkpointed

        service = StudyService(root, port=0, n_workers=1, checkpoint_every=10).start()
        try:
            client = ServiceClient(service.url, timeout=30.0)
            final = client.wait(job["id"], timeout=120.0)
            assert final["state"] == "done"
            assert final["runs_done"] == 3
            assert [r["name"] for r in client.result(job["id"])["runs"]] == [
                "svc-test:0", "svc-test:1", "svc-test:2",
            ]
        finally:
            service.stop()
