"""Job-store tests: persistence, dedupe, queue semantics, crash recovery."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.schemas import validate_submission
from repro.service.store import JobStore, UnknownJobError


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "svc")


def submit(store, make_payload, **kwargs):
    return store.submit(validate_submission(make_payload(**kwargs)))


class TestSubmission:
    def test_submit_persists_and_round_trips(self, store, make_payload):
        record, deduplicated = submit(store, make_payload)
        assert not deduplicated
        assert record.state == "queued"
        assert record.runs_total == 2
        # a fresh store instance over the same root sees the identical record
        assert JobStore(store.root).get(record.id) == record

    def test_job_json_is_valid_json_on_disk(self, store, make_payload):
        record, _ = submit(store, make_payload)
        payload = json.loads((store.job_dir(record.id) / "job.json").read_text())
        assert payload["id"] == record.id
        assert payload["spec"]["study_name"] == "svc-test"

    def test_duplicate_submission_dedupes_to_same_job(self, store, make_payload):
        first, dedup_first = submit(store, make_payload)
        second, dedup_second = submit(store, make_payload)
        assert (dedup_first, dedup_second) == (False, True)
        assert first.id == second.id
        assert len(store.list()) == 1

    def test_different_submissions_get_different_jobs(self, store, make_payload):
        a, _ = submit(store, make_payload, seed=0)
        b, _ = submit(store, make_payload, seed=1)
        assert a.id != b.id
        assert len(store.list()) == 2

    def test_unknown_job_raises(self, store):
        with pytest.raises(UnknownJobError):
            store.get("no-such-job")
        with pytest.raises(UnknownJobError):
            store.events("no-such-job")


class TestQueue:
    def test_claim_marks_running_and_is_exclusive(self, store, make_payload):
        record, _ = submit(store, make_payload)
        claimed = store.claim_next(timeout=0)
        assert claimed.id == record.id
        assert claimed.state == "running"
        assert store.claim_next(timeout=0) is None

    def test_claim_next_is_fifo(self, store, make_payload):
        a, _ = submit(store, make_payload, seed=0)
        b, _ = submit(store, make_payload, seed=1)
        assert store.claim_next(timeout=0).id == a.id
        assert store.claim_next(timeout=0).id == b.id

    def test_claim_next_wakes_on_submit(self, store, make_payload):
        claimed = []
        thread = threading.Thread(
            target=lambda: claimed.append(store.claim_next(timeout=5.0))
        )
        thread.start()
        record, _ = submit(store, make_payload)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert claimed[0].id == record.id

    def test_requeue_returns_job_to_queue(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        store.requeue(record.id, reason="test")
        assert store.get(record.id).state == "queued"
        events = [e["event"] for e in store.events(record.id)]
        assert events == ["queued", "started", "interrupted"]

    def test_recover_requeues_jobs_a_dead_server_left_running(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        # a SIGKILLed server performs no cleanup: the job simply stays
        # "running" on disk; a fresh store over the same root must recover it
        fresh = JobStore(store.root)
        assert fresh.get(record.id).state == "running"
        assert fresh.recover() == [record.id]
        assert fresh.get(record.id).state == "queued"
        assert fresh.claim_next(timeout=0).id == record.id

    def test_recover_with_nothing_running_is_a_no_op(self, store, make_payload):
        submit(store, make_payload)
        assert store.recover() == []


class TestLifecycle:
    def test_done_path_and_events(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        store.record_run_finished(record.id, "svc-test:0", {"final_train_loss": 1.0})
        store.record_run_finished(record.id, "svc-test:1", {"final_train_loss": 2.0})
        store.mark_done(record.id)
        final = store.get(record.id)
        assert final.state == "done"
        assert final.runs_done == 2
        events = store.events(record.id)
        assert [e["event"] for e in events] == [
            "queued", "started", "run_finished", "run_finished", "done",
        ]
        assert [e["seq"] for e in events] == list(range(5))
        assert events[2]["run"] == "svc-test:0"
        assert events[2]["metrics"] == {"final_train_loss": 1.0}

    def test_events_since_filters(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        assert [e["event"] for e in store.events(record.id, since=0)] == ["started"]
        assert store.events(record.id, since=10) == []

    def test_failed_records_error(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        store.mark_failed(record.id, "ValueError: boom")
        final = store.get(record.id)
        assert final.state == "failed"
        assert "boom" in final.error

    def test_dedupe_applies_to_done_jobs(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        store.mark_done(record.id)
        again, deduplicated = submit(store, make_payload)
        assert deduplicated
        assert again.state == "done"

    def test_resubmission_requeues_failed_job(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        store.mark_failed(record.id, "boom")
        again, deduplicated = submit(store, make_payload)
        assert not deduplicated
        assert again.id == record.id
        assert again.state == "queued"
        assert again.error is None
        assert again.attempts == 2

    def test_torn_progress_line_is_skipped(self, store, make_payload):
        record, _ = submit(store, make_payload)
        with store.progress_path(record.id).open("a") as stream:
            stream.write('{"seq": 1, "ev')  # a crash mid-append
        assert [e["event"] for e in store.events(record.id)] == ["queued"]
        # and the next append still gets a fresh, dense sequence number
        entry = store.append_event(record.id, "started")
        assert entry["seq"] == 1


class TestCancel:
    def test_cancel_queued_is_immediate(self, store, make_payload):
        record, _ = submit(store, make_payload)
        cancelled = store.request_cancel(record.id)
        assert cancelled.state == "cancelled"
        assert store.claim_next(timeout=0) is None

    def test_cancel_running_sets_flag(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        requested = store.request_cancel(record.id)
        assert requested.state == "running"
        assert store.cancel_requested(record.id)

    def test_cancel_terminal_job_is_a_no_op(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.claim_next(timeout=0)
        store.mark_done(record.id)
        assert store.request_cancel(record.id).state == "done"

    def test_resubmission_requeues_cancelled_job(self, store, make_payload):
        record, _ = submit(store, make_payload)
        store.request_cancel(record.id)
        again, deduplicated = submit(store, make_payload)
        assert not deduplicated
        assert again.state == "queued"
