"""Exact-equality oracle tests: tape gradients vs the hand-wired backward.

Before the tape refactor every op captured its backward as a closure with a
fixed numpy expression.  These tests freeze those expressions as *test-local
reference implementations* and assert the graph-derived gradients reproduce
them **bit-identically** (``np.array_equal``, no tolerance) on golden
weight/input sets.  Any reordering of the arithmetic inside a VJP — even a
mathematically equivalent one — fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def _golden(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape)


# ---------------------------------------------------------------------------
# Reference implementations: the historical closure arithmetic, verbatim.
# ---------------------------------------------------------------------------


def ref_linear_backward(xd, w, grad):
    """Hand-wired fused linear backward (2-D batch case)."""
    grad_w = (xd.T @ grad).transpose()
    grad_x = grad @ w
    grad_b = grad.sum(axis=0)
    return grad_x, grad_w, grad_b


def ref_linear_backward_1d(xd, w, grad):
    """Hand-wired fused linear backward (single-sample case)."""
    grad_w = (xd[:, None] @ grad[None, :]).transpose()
    grad_x = (grad[None, :] @ w).reshape(xd.shape)
    grad_b = grad
    return grad_x, grad_w, grad_b


def _unbroadcast_ref(grad, shape):
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class TestFusedLinearOracle:
    def test_batch_gradients_bit_identical(self):
        xd = _golden((32, 6), seed=10)
        w = _golden((16, 6), seed=11)
        b = _golden((16,), seed=12)
        grad = _golden((32, 16), seed=13)

        x_t = Tensor(xd, requires_grad=True)
        w_t = Tensor(w, requires_grad=True)
        b_t = Tensor(b, requires_grad=True)
        out = F.linear(x_t, w_t, b_t)
        out.backward(grad)

        ref_x, ref_w, ref_b = ref_linear_backward(xd, w, grad)
        assert np.array_equal(x_t.grad, ref_x)
        assert np.array_equal(w_t.grad, ref_w)
        assert np.array_equal(b_t.grad, ref_b)

    def test_single_sample_gradients_bit_identical(self):
        xd = _golden((6,), seed=20)
        w = _golden((4, 6), seed=21)
        b = _golden((4,), seed=22)
        grad = _golden((4,), seed=23)

        x_t = Tensor(xd, requires_grad=True)
        w_t = Tensor(w, requires_grad=True)
        b_t = Tensor(b, requires_grad=True)
        F.linear(x_t, w_t, b_t).backward(grad)

        ref_x, ref_w, ref_b = ref_linear_backward_1d(xd, w, grad)
        assert np.array_equal(x_t.grad, ref_x)
        assert np.array_equal(w_t.grad, ref_w)
        assert np.array_equal(b_t.grad, ref_b)

    def test_no_bias_variant(self):
        xd = _golden((8, 5), seed=30)
        w = _golden((3, 5), seed=31)
        grad = _golden((8, 3), seed=32)
        w_t = Tensor(w, requires_grad=True)
        F.linear(Tensor(xd), w_t).backward(grad)
        assert np.array_equal(w_t.grad, (xd.T @ grad).transpose())


class TestPrimitiveOracles:
    """Each case replays one historical closure formula bit-exactly."""

    def test_mul_broadcast(self):
        a = _golden((7, 1, 4), seed=40)
        b = _golden((3, 4), seed=41)
        grad = _golden((7, 3, 4), seed=42)
        a_t = Tensor(a, requires_grad=True)
        b_t = Tensor(b, requires_grad=True)
        (a_t * b_t).backward(grad)
        assert np.array_equal(a_t.grad, _unbroadcast_ref(grad * b, a.shape))
        assert np.array_equal(b_t.grad, _unbroadcast_ref(grad * a, b.shape))

    def test_div(self):
        a = _golden((5, 3), seed=43)
        b = np.abs(_golden((5, 3), seed=44)) + 0.5
        grad = _golden((5, 3), seed=45)
        a_t = Tensor(a, requires_grad=True)
        b_t = Tensor(b, requires_grad=True)
        (a_t / b_t).backward(grad)
        assert np.array_equal(a_t.grad, grad / b)
        assert np.array_equal(b_t.grad, -grad * a / (b * b))

    def test_relu_mask(self):
        a = _golden((6, 6), seed=46)
        grad = _golden((6, 6), seed=47)
        a_t = Tensor(a, requires_grad=True)
        a_t.relu().backward(grad)
        assert np.array_equal(a_t.grad, grad * (a > 0.0))

    def test_tanh_uses_forward_output(self):
        a = _golden((4, 4), seed=48)
        grad = _golden((4, 4), seed=49)
        a_t = Tensor(a, requires_grad=True)
        a_t.tanh().backward(grad)
        out = np.tanh(a)
        assert np.array_equal(a_t.grad, grad * (1.0 - out * out))

    def test_sigmoid_uses_forward_output(self):
        a = _golden((4, 4), seed=50)
        grad = _golden((4, 4), seed=51)
        a_t = Tensor(a, requires_grad=True)
        a_t.sigmoid().backward(grad)
        out = 1.0 / (1.0 + np.exp(-a))
        assert np.array_equal(a_t.grad, grad * out * (1.0 - out))

    def test_matmul_adjoints(self):
        a = _golden((5, 3), seed=52)
        b = _golden((3, 4), seed=53)
        grad = _golden((5, 4), seed=54)
        a_t = Tensor(a, requires_grad=True)
        b_t = Tensor(b, requires_grad=True)
        a_t.matmul(b_t).backward(grad)
        assert np.array_equal(a_t.grad, grad @ b.T)
        assert np.array_equal(b_t.grad, a.T @ grad)

    def test_mean_spreads_uniformly(self):
        a = _golden((3, 8), seed=55)
        a_t = Tensor(a, requires_grad=True)
        a_t.mean().backward()
        assert np.array_equal(a_t.grad, np.broadcast_to(np.float64(1.0) / a.size, a.shape))

    def test_per_sample_mse_chain(self):
        # per_sample_mse = ((p - t)^2).mean(axis=1): the Breed hot path.
        p = _golden((6, 10), seed=56)
        t = _golden((6, 10), seed=57)
        grad = _golden((6,), seed=58)
        p_t = Tensor(p, requires_grad=True)
        F.per_sample_mse(p_t, Tensor(t)).backward(grad)
        diff = p - t
        # closure chain: mean-VJP spreads grad/10, two mul-VJP contributions
        g = np.broadcast_to(np.expand_dims(grad / 10.0, axis=(1,)), p.shape).copy()
        ref = g * diff + g * diff
        assert np.array_equal(p_t.grad, ref)


class TestMlpTrainingStepOracle:
    """Replay a full hand-wired MLP backward and compare every parameter."""

    def _model_and_batch(self):
        rng = np.random.default_rng(99)
        model = nn.Sequential(
            nn.Linear(6, 16, rng=rng),
            nn.ReLU(),
            nn.Linear(16, 16, rng=rng),
            nn.ReLU(),
            nn.Linear(16, 25, rng=rng),
        )
        x = _golden((32, 6), seed=100)
        y = _golden((32, 25), seed=101)
        return model, x, y

    def test_all_parameter_gradients_bit_identical(self):
        model, x, y = self._model_and_batch()
        loss = F.mse_loss(model(Tensor(x)), Tensor(y))
        loss.backward()

        # Hand-wired reference: forward pass saving activations, then the
        # historical per-layer backward formulas, in the same order numpy
        # would have evaluated them.
        linears = [model[0], model[2], model[4]]
        w = [lin.weight.data for lin in linears]
        b = [lin.bias.data for lin in linears]

        h0 = x @ w[0].T + b[0]
        a0 = h0 * (h0 > 0.0)
        h1 = a0 @ w[1].T + b[1]
        a1 = h1 * (h1 > 0.0)
        out = a1 @ w[2].T + b[2]

        diff = out - y
        # mse_loss: mean over all elements of diff*diff; backward chain:
        g = np.broadcast_to(np.float64(1.0) / diff.size, diff.shape).copy()
        g = g * diff + g * diff

        ref_w2, ref_b2 = (a1.T @ g).transpose(), g.sum(axis=0)
        g = g @ w[2]
        g = g * (h1 > 0.0)
        ref_w1, ref_b1 = (a0.T @ g).transpose(), g.sum(axis=0)
        g = g @ w[1]
        g = g * (h0 > 0.0)
        ref_w0, ref_b0 = (x.T @ g).transpose(), g.sum(axis=0)

        assert np.array_equal(linears[2].weight.grad, ref_w2)
        assert np.array_equal(linears[2].bias.grad, ref_b2)
        assert np.array_equal(linears[1].weight.grad, ref_w1)
        assert np.array_equal(linears[1].bias.grad, ref_b1)
        assert np.array_equal(linears[0].weight.grad, ref_w0)
        assert np.array_equal(linears[0].bias.grad, ref_b0)

    def test_adam_step_after_tape_backward_is_deterministic(self):
        # Two independent replays of the same seeded step must agree bitwise.
        states = []
        for _ in range(2):
            model, x, y = self._model_and_batch()
            optimizer = nn.Adam(model.parameters(), lr=1e-3)
            loss = F.mse_loss(model(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
            states.append({k: v.data.copy() for k, v in model.named_parameters()})
        for key in states[0]:
            assert np.array_equal(states[0][key], states[1][key]), key
