"""Tests for loss modules, optimizers and LR schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.losses import BatchLossRecord, PerSampleLossTracker
from repro.nn.tensor import Tensor


class TestMSELossModule:
    def test_mean(self):
        loss = nn.MSELoss()(Tensor([2.0]), Tensor([0.0]))
        assert loss.item() == pytest.approx(4.0)

    def test_per_sample_static(self, rng):
        pred = Tensor(rng.normal(size=(4, 6)))
        target = Tensor(rng.normal(size=(4, 6)))
        per = nn.MSELoss.per_sample(pred, target)
        assert per.shape == (4,)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            nn.MSELoss(reduction="bad")


class TestL1LossModule:
    def test_value(self):
        assert nn.L1Loss()(Tensor([3.0]), Tensor([1.0])).item() == pytest.approx(2.0)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            nn.L1Loss(reduction="bad")


class TestBatchLossRecord:
    def test_statistics(self):
        record = BatchLossRecord(iteration=3, sample_losses=np.array([1.0, 3.0]))
        assert record.mean == pytest.approx(2.0)
        assert record.std == pytest.approx(1.0)
        assert record.batch_loss == record.mean

    def test_deviations_formula(self):
        record = BatchLossRecord(iteration=0, sample_losses=np.array([1.0, 3.0]))
        np.testing.assert_allclose(record.deviations(), [0.0, 1.0])

    def test_deviations_non_negative(self, rng):
        record = BatchLossRecord(iteration=0, sample_losses=rng.random(32))
        assert np.all(record.deviations() >= 0.0)

    def test_zero_std_does_not_divide_by_zero(self):
        record = BatchLossRecord(iteration=0, sample_losses=np.array([2.0, 2.0]))
        assert np.all(np.isfinite(record.deviations()))

    def test_empty_batch(self):
        record = BatchLossRecord(iteration=0, sample_losses=np.array([]))
        assert record.mean == 0.0 and record.std == 0.0


class TestPerSampleLossTracker:
    def test_batch_loss_is_differentiable_and_records(self, rng):
        tracker = PerSampleLossTracker()
        pred = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        target = Tensor(rng.normal(size=(5, 3)))
        loss = tracker.batch_loss(pred, target, iteration=7)
        loss.backward()
        assert pred.grad is not None
        assert tracker.last is not None
        assert tracker.last.iteration == 7
        assert tracker.last.sample_losses.shape == (5,)

    def test_clear(self, rng):
        tracker = PerSampleLossTracker()
        tracker.batch_loss(Tensor(rng.normal(size=(2, 2))), Tensor(np.zeros((2, 2))), 0)
        tracker.clear()
        assert tracker.last is None


def _quadratic_problem(rng, n=64, d=4):
    """Linear-regression problem for optimizer convergence checks."""
    true_w = rng.normal(size=(1, d))
    x = rng.normal(size=(n, d))
    y = x @ true_w.T
    return x, y


class TestSGD:
    def test_converges_on_linear_regression(self, rng):
        x, y = _quadratic_problem(rng)
        model = nn.Linear(4, 1, rng=rng)
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        loss_fn = nn.MSELoss()
        first = None
        for _ in range(200):
            model.zero_grad()
            loss = loss_fn(model(Tensor(x)), Tensor(y))
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.01 * first

    def test_momentum_and_nesterov(self, rng):
        x, y = _quadratic_problem(rng)
        model = nn.Linear(4, 1, rng=rng)
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9, nesterov=True)
        loss_fn = nn.MSELoss()
        for _ in range(100):
            model.zero_grad()
            loss = loss_fn(model(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
        assert loss.item() < 1e-2

    def test_weight_decay_shrinks_weights(self, rng):
        model = nn.Linear(3, 1, rng=rng)
        optimizer = nn.SGD(model.parameters(), lr=0.1, weight_decay=0.5)
        before = np.abs(model.weight.data).sum()
        for _ in range(10):
            model.zero_grad()
            model(Tensor(np.zeros((1, 3)))).sum().backward()
            optimizer.step()
        assert np.abs(model.weight.data).sum() < before

    def test_invalid_arguments(self, rng):
        params = nn.Linear(2, 1, rng=rng).parameters()
        with pytest.raises(ValueError):
            nn.SGD(params, lr=-1.0)
        with pytest.raises(ValueError):
            nn.SGD(params, lr=0.1, momentum=-0.1)
        with pytest.raises(ValueError):
            nn.SGD(params, lr=0.1, nesterov=True)

    def test_empty_parameter_list(self):
        with pytest.raises(ValueError):
            nn.SGD([])

    def test_skips_parameters_without_grad(self, rng):
        model = nn.Linear(2, 1, rng=rng)
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        before = model.weight.data.copy()
        optimizer.step()  # no gradients accumulated
        np.testing.assert_array_equal(model.weight.data, before)


class TestAdam:
    def test_converges_faster_than_plain_sgd_on_mlp(self, rng):
        x = rng.normal(size=(64, 3))
        y = np.sin(x).sum(axis=1, keepdims=True)

        def train(optimizer_cls, **kwargs):
            local_rng = np.random.default_rng(0)
            model = nn.Sequential(nn.Linear(3, 16, rng=local_rng), nn.ReLU(), nn.Linear(16, 1, rng=local_rng))
            optimizer = optimizer_cls(model.parameters(), **kwargs)
            loss_fn = nn.MSELoss()
            for _ in range(150):
                model.zero_grad()
                loss = loss_fn(model(Tensor(x)), Tensor(y))
                loss.backward()
                optimizer.step()
            return loss.item()

        assert train(nn.Adam, lr=1e-2) < train(nn.SGD, lr=1e-2)

    def test_bias_correction_first_step_magnitude(self, rng):
        # With a constant unit gradient, the first Adam update is ≈ lr.
        p = nn.Parameter(np.array([0.0]))
        optimizer = nn.Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        optimizer.step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_state_dict_roundtrip(self, rng):
        p = nn.Parameter(np.array([1.0, 2.0]))
        optimizer = nn.Adam([p], lr=0.01)
        p.grad = np.array([0.5, -0.5])
        optimizer.step()
        state = optimizer.state_dict()
        other = nn.Adam([nn.Parameter(np.array([1.0, 2.0]))], lr=0.01)
        other.load_state_dict(state)
        assert other.step_count == 1
        np.testing.assert_allclose(other._m[0], optimizer._m[0])

    def test_invalid_betas(self, rng):
        params = [nn.Parameter(np.zeros(1))]
        with pytest.raises(ValueError):
            nn.Adam(params, betas=(1.0, 0.999))

    def test_weight_decay_coupled(self):
        p = nn.Parameter(np.array([10.0]))
        optimizer = nn.Adam([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0])
        optimizer.step()
        assert p.data[0] < 10.0


class TestAdamW:
    def test_decoupled_decay_changes_weights_even_with_zero_grad(self):
        p = nn.Parameter(np.array([10.0]))
        optimizer = nn.AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        optimizer.step()
        assert p.data[0] == pytest.approx(10.0 * (1 - 0.1 * 0.5), rel=1e-6)


class TestSchedulers:
    def _optimizer(self):
        return nn.Adam([nn.Parameter(np.zeros(1))], lr=1.0)

    def test_constant(self):
        sched = nn.ConstantLR(self._optimizer())
        assert sched.step() == 1.0

    def test_step_lr(self):
        optimizer = self._optimizer()
        sched = nn.StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        optimizer = self._optimizer()
        sched = nn.CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        values = [sched.step() for _ in range(10)]
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        assert values[0] < 1.0

    def test_cosine_monotone_decreasing(self):
        sched = nn.CosineAnnealingLR(self._optimizer(), t_max=20)
        values = [sched.step() for _ in range(20)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_reduce_on_plateau(self):
        optimizer = self._optimizer()
        sched = nn.ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        sched.step_metric(1.0)
        sched.step_metric(1.0)
        lr = sched.step_metric(1.0)   # patience exceeded -> halve
        assert lr == pytest.approx(0.5)

    def test_reduce_on_plateau_improvement_resets(self):
        sched = nn.ReduceLROnPlateau(self._optimizer(), factor=0.5, patience=2)
        lr = None
        for metric in [1.0, 0.9, 0.8, 0.7]:
            lr = sched.step_metric(metric)
        assert lr == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            nn.StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            nn.CosineAnnealingLR(self._optimizer(), t_max=0)
        with pytest.raises(ValueError):
            nn.ReduceLROnPlateau(self._optimizer(), factor=1.5)

    def test_history_recorded(self):
        sched = nn.StepLR(self._optimizer(), step_size=1, gamma=0.5)
        sched.step()
        sched.step()
        assert len(sched.history) == 3


class TestAdamBufferedBitIdentity:
    """Adam's out=-buffered update must match the allocating textbook form
    bit-for-bit (the buffers change memory traffic, not arithmetic)."""

    def test_buffered_update_matches_reference_exactly(self):
        from repro.nn.module import Parameter

        rng = np.random.default_rng(11)
        shapes = [(16, 6), (16,), (40, 16), (40,)]
        params = [Parameter(rng.normal(size=s)) for s in shapes]
        optimizer = nn.Adam(params, lr=1e-3)

        # Reference state mirroring the original allocating implementation.
        ref = [p.data.copy() for p in params]
        ref_m = [np.zeros_like(p.data) for p in params]
        ref_v = [np.zeros_like(p.data) for p in params]
        beta1, beta2, eps, lr = optimizer.beta1, optimizer.beta2, optimizer.eps, optimizer.lr

        for t in range(1, 6):
            grads = [rng.normal(size=s) for s in shapes]
            for p, g in zip(params, grads):
                p.grad = g.copy()
            optimizer.step()
            bias1 = 1.0 - beta1**t
            bias2 = 1.0 - beta2**t
            for i, g in enumerate(grads):
                m, v = ref_m[i], ref_v[i]
                m *= beta1
                m += (1.0 - beta1) * g
                v *= beta2
                v += (1.0 - beta2) * g * g
                m_hat = m / bias1
                v_hat = v / bias2
                ref[i] = ref[i] - lr * m_hat / (np.sqrt(v_hat) + eps)
            for p, expected in zip(params, ref):
                np.testing.assert_array_equal(p.data, expected)
