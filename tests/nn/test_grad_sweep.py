"""Seeded property-based finite-difference sweep over every registered op.

This is the CI grad-check gate: for each op in the VJP registry a family of
random-shape cases (seeded, so failures reproduce) is checked against central
finite differences; a coverage assertion fails the suite if an op is ever
registered without a sweep case.  The layer section runs the promoted
:func:`repro.nn.grad_check.assert_module_gradients` harness over the three
built-in architectures (MLP, residual, conv2d).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.grad_check import assert_module_gradients, check_gradients, grad_check_module
from repro.nn.tensor import Tensor, concatenate, stack, vjp_names


def _shapes(seed, n=3, max_ndim=3, max_side=5):
    """Deterministic random shapes for one op family."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        ndim = int(rng.integers(1, max_ndim + 1))
        out.append(tuple(int(rng.integers(1, max_side + 1)) for _ in range(ndim)))
    return out


def _data(shape, seed, positive=False):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal(shape)
    if positive:
        arr = np.abs(arr) + 0.5
    return arr


# One finite-difference case family per registered op.  The coverage test
# below fails if an op is registered without an entry here, so extending the
# engine forces extending the sweep.
OP_CASES = {
    "add": lambda x: (x + Tensor(_data(x.shape, 1))).sum(),
    "sub": lambda x: (x - Tensor(_data(x.shape, 2))).sum(),
    "mul": lambda x: (x * Tensor(_data(x.shape, 3))).sum(),
    "div": lambda x: (x / Tensor(_data(x.shape, 4, positive=True))).sum(),
    "neg": lambda x: (-x).sum(),
    "pow": lambda x: ((x * x + 1.0) ** 1.5).sum(),
    "matmul": lambda x: (x @ Tensor(_data((x.shape[-1], 3), 5))).sum(),
    "relu": lambda x: (x + 10.0).relu().sum(),  # shifted off the kink
    "exp": lambda x: x.exp().sum(),
    "log": lambda x: (x * x + 1.0).log().sum(),
    "tanh": lambda x: x.tanh().sum(),
    "sigmoid": lambda x: x.sigmoid().sum(),
    "abs": lambda x: (x + 10.0).abs().sum(),  # shifted off the kink
    "sqrt": lambda x: (x * x + 1.0).sqrt().sum(),
    "reshape": lambda x: (x.reshape(-1) * Tensor(_data((x.size,), 6))).sum(),
    "transpose": lambda x: (x.transpose() * Tensor(_data(x.shape[::-1], 7))).sum(),
    "getitem": lambda x: (x[0] * 2.0).sum(),
    "sum": lambda x: (x.sum(axis=0) * Tensor(_data(x.shape[1:], 8))).sum(),
    "mean": lambda x: (x.mean(axis=0, keepdims=True) * 3.0).sum(),
    "max": lambda x: x.max(),
    "stack": lambda x: stack([x * 2.0, x * 3.0], axis=0).sum(),
    "concatenate": lambda x: (concatenate([x, x * 2.0], axis=0)).sum(),
    "linear": lambda x: F.linear(
        x, Tensor(_data((4, x.shape[-1]), 9)), Tensor(_data((4,), 10))
    ).sum(),
    "conv2d": None,  # 4-D input; swept separately below
}

_MATRIX_ONLY = {"matmul", "linear", "transpose"}  # need ndim == 2
_MULTI_AXIS = {"sum", "mean", "getitem"}          # need ndim >= 2


def test_every_registered_op_is_swept():
    missing = sorted(set(vjp_names()) - set(OP_CASES))
    assert not missing, f"ops registered without a grad-sweep case: {missing}"


@pytest.mark.parametrize("op", sorted(op for op, fn in OP_CASES.items() if fn is not None))
def test_op_gradients_match_finite_differences(op):
    fn = OP_CASES[op]
    op_seed = sum(ord(c) * 31**i for i, c in enumerate(op)) % (2**32)  # stable across runs
    for case_index, shape in enumerate(_shapes(seed=op_seed, n=3)):
        if op in _MATRIX_ONLY or op in _MULTI_AXIS:
            shape = (shape + (3, 4))[:2] if len(shape) < 2 else shape[:2]
        x = _data(shape, seed=1000 + case_index)
        assert check_gradients(fn, x, rtol=1e-4, atol=1e-6), (
            f"op {op!r} failed finite-difference check on shape {shape} "
            f"(case {case_index})"
        )


@pytest.mark.parametrize("padding", [0, 1, "same"])
def test_conv2d_gradients_match_finite_differences(padding):
    rng = np.random.default_rng(77)
    w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.5, requires_grad=True)
    b = Tensor(rng.standard_normal(3) * 0.1, requires_grad=True)

    def fn(x):
        return F.conv2d(x, w, b, padding=padding).sum()

    x = rng.standard_normal((2, 2, 5, 5))
    assert check_gradients(fn, x, rtol=1e-4, atol=1e-6)


def test_conv2d_weight_and_bias_gradients():
    layer = nn.Conv2d(2, 3, 3, padding="same", rng=np.random.default_rng(8))
    inputs = np.random.default_rng(9).standard_normal((2, 2, 4, 4))

    class Wrap(nn.Module):
        def __init__(self):
            super().__init__()
            self.add_module("conv", layer)

        def forward(self, x):
            return self.conv(x)

    report = grad_check_module(
        Wrap(),
        inputs,
        np.zeros((2, 3, 4, 4)),
        lambda p, t: F.mse_loss(p, t),
    )
    assert report.ok, report.describe()
    assert {e.name for e in report.entries} == {"conv.weight", "conv.bias"}


# ---------------------------------------------------------------------------
# Architecture sweep: every built-in surrogate body passes the FD harness.
# ---------------------------------------------------------------------------


def _architecture_module(name, seed):
    from repro.surrogate.model import SurrogateConfig, build_surrogate

    config = SurrogateConfig(
        input_dim=5,
        output_dim=16,  # 4x4 grid for conv2d
        hidden_size=4,
        n_hidden_layers=2,
        architecture=name,
    )
    return build_surrogate(config, rng=np.random.default_rng(seed))


@pytest.mark.parametrize("architecture", ["mlp", "residual", "conv2d"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_architecture_gradients_match_finite_differences(architecture, seed):
    module = _architecture_module(architecture, seed)
    rng = np.random.default_rng(200 + seed)
    inputs = rng.standard_normal((3, 5))
    targets = rng.standard_normal((3, 16))
    report = assert_module_gradients(
        module, inputs, targets, lambda p, t: F.mse_loss(p, t),
        rtol=1e-3, atol=1e-5,
    )
    assert report.ok
    assert len(report.entries) == len(list(module.named_parameters()))


def test_report_names_failing_parameter():
    """Failures are reported by parameter name, not as a bare boolean."""
    from repro.nn.grad_check import GradCheckEntry, GradCheckReport

    module = _architecture_module("mlp", seed=3)
    rng = np.random.default_rng(300)
    report = grad_check_module(
        module,
        rng.standard_normal((3, 5)),
        rng.standard_normal((3, 16)),
        lambda p, t: F.mse_loss(p, t),
    )
    assert report.ok and report.failures == []

    bad = GradCheckReport(
        entries=[
            GradCheckEntry("layer0.weight", 1.0, 0.5, passed=False),
            GradCheckEntry("layer0.bias", 0.0, 0.0, passed=True),
        ]
    )
    assert not bad.ok
    assert bad.failures == ["layer0.weight"]
    assert "FAILED parameters: ['layer0.weight']" in bad.describe()


def test_assert_module_gradients_raises_with_names():
    from repro.nn.grad_check import GradCheckEntry, GradCheckReport

    module = _architecture_module("mlp", seed=4)
    rng = np.random.default_rng(400)
    report = assert_module_gradients(
        module,
        rng.standard_normal((2, 5)),
        rng.standard_normal((2, 16)),
        lambda p, t: F.mse_loss(p, t),
    )
    assert isinstance(report, GradCheckReport)
    assert all(isinstance(e, GradCheckEntry) for e in report.entries)
