"""Tests for the recorded op graph: Tape, Node, VJP registry, edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import (
    Node,
    Tape,
    Tensor,
    needs_grad,
    no_grad,
    register_vjp,
    vjp_names,
    VJPS,
)


class TestTapeRecording:
    def test_records_ops_in_execution_order(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        with Tape() as tape:
            ((a * b) + a).sum()
        assert tape.ops() == ["mul", "add", "sum"]
        assert len(tape) == 3

    def test_counts_per_op(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with Tape() as tape:
            (x.relu() + x.relu()).mean()
        assert tape.counts() == {"relu": 2, "add": 1, "mean": 1}

    def test_linear_records_single_fused_node(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((5, 4)))
        with Tape() as tape:
            layer(x)
        assert tape.ops() == ["linear"]

    def test_mlp_forward_backward_op_count_is_layer_count(self):
        model = nn.Sequential(
            nn.Linear(6, 8, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Linear(8, 4, rng=np.random.default_rng(1)),
        )
        x = Tensor(np.ones((2, 6)))
        with Tape() as tape:
            loss = F.mse_loss(model(x), Tensor(np.zeros((2, 4))))
            loss.backward()
        # Forward only is recorded; backward derives from the graph.
        assert tape.counts()["linear"] == 2

    def test_nesting_inner_tape_records(self):
        a = Tensor([1.0], requires_grad=True)
        with Tape() as outer:
            _ = a * 2.0
            with Tape() as inner:
                _ = a + 1.0
            _ = a - 1.0
        assert inner.ops() == ["add"]
        assert outer.ops() == ["mul", "sub"]

    def test_no_grad_suppresses_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with Tape() as tape:
            with no_grad():
                out = a * 2.0
        assert len(tape) == 0
        assert out.grad_fn is None

    def test_ops_without_grad_parents_not_recorded(self):
        a = Tensor([1.0])  # no requires_grad
        with Tape() as tape:
            _ = a * 2.0
        assert len(tape) == 0

    def test_tape_exit_restores_previous(self):
        a = Tensor([1.0], requires_grad=True)
        with Tape() as outer:
            with Tape():
                pass
            _ = a.relu()
        assert outer.ops() == ["relu"]


class TestVjpRegistry:
    def test_every_recorded_op_has_a_vjp(self):
        # Build a graph touching a broad op set and check each node resolves.
        a = Tensor(np.linspace(0.1, 1.0, 6).reshape(2, 3), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        with Tape() as tape:
            out = ((a * b + a - b) / b).relu().exp().log().tanh().sigmoid()
            out = out.abs().sqrt() ** 2.0
            out = (-out).reshape(3, 2).transpose()[0]
            out.sum() + a.mean() + a.max()
        for node in tape.nodes:
            assert node.op in VJPS

    def test_register_vjp_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_vjp("add", lambda node, grad: (grad, grad))

    def test_register_vjp_overwrite_roundtrip(self):
        original = VJPS["neg"]
        try:
            register_vjp("neg", lambda node, grad: (-grad,), overwrite=True)
            assert VJPS["neg"] is not original
        finally:
            register_vjp("neg", original, overwrite=True)

    def test_unregistered_op_raises_named_error(self):
        node = Node("definitely-not-an-op", (Tensor([1.0]),))
        with pytest.raises(KeyError, match="definitely-not-an-op"):
            node.vjp(np.ones(1))

    def test_vjp_names_sorted_and_complete(self):
        names = vjp_names()
        assert names == sorted(names)
        for expected in ("add", "linear", "conv2d", "matmul", "mean", "stack"):
            assert expected in names


class TestDeadInputSkipping:
    def test_linear_skips_input_gradient_for_plain_leaf(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((5, 4)))  # leaf, no requires_grad
        out = layer(x)
        node = out.grad_fn
        assert node.op == "linear"
        contributions = node.vjp(np.ones(out.shape))
        assert contributions[0] is None        # dead input skipped
        assert contributions[1] is not None    # weight gradient present
        assert contributions[2] is not None    # bias gradient present

    def test_linear_computes_input_gradient_when_needed(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((5, 4)), requires_grad=True)
        out = layer(x)
        contributions = out.grad_fn.vjp(np.ones(out.shape))
        assert contributions[0] is not None
        out.backward(np.ones(out.shape))
        assert x.grad is not None
        assert x.grad.shape == x.shape

    def test_conv2d_skips_input_gradient_for_plain_leaf(self):
        layer = nn.Conv2d(2, 3, 3, padding="same", rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 2, 5, 5)))
        out = layer(x)
        contributions = out.grad_fn.vjp(np.ones(out.shape))
        assert contributions[0] is None
        assert contributions[1].shape == layer.weight.shape
        assert contributions[2].shape == layer.bias.shape

    def test_first_layer_input_never_accumulates(self):
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)), nn.ReLU())
        x = Tensor(np.ones((5, 4)))
        loss = F.mse_loss(model(x), Tensor(np.zeros((5, 3))))
        loss.backward()
        assert x.grad is None


class TestNdimFallback:
    def test_linear_ndim3_falls_back_to_composed_ops(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 5, 4)), requires_grad=True)
        with Tape() as tape:
            out = layer(x)
        assert out.shape == (2, 5, 3)
        assert "linear" not in tape.ops()
        assert "matmul" in tape.ops()

    def test_linear_ndim3_forward_matches_flattened_2d(self):
        rng = np.random.default_rng(3)
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        data = rng.standard_normal((2, 5, 4))

        out3 = layer(Tensor(data))
        out2 = layer(Tensor(data.reshape(10, 4)))
        np.testing.assert_array_equal(out3.data.reshape(10, 3), out2.data)


class TestBroadcastingVjps:
    def test_add_broadcast_bias_gradient_sums_batch(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((5, 3)))
        (x + bias).sum().backward()
        np.testing.assert_array_equal(bias.grad, np.full(3, 5.0))

    def test_mul_broadcast_scalar(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.arange(6.0).reshape(2, 3))
        (x * s).sum().backward()
        assert s.grad.shape == ()
        assert s.grad == pytest.approx(np.arange(6.0).sum())

    def test_div_broadcast_keepdim_axis(self):
        d = Tensor(np.array([[2.0], [4.0]]), requires_grad=True)
        x = Tensor(np.ones((2, 3)))
        (x / d).sum().backward()
        np.testing.assert_allclose(d.grad, np.array([[-3.0 / 4.0], [-3.0 / 16.0]]))

    def test_sub_broadcast_gradient_shapes(self):
        a = Tensor(np.ones((4, 1, 3)), requires_grad=True)
        b = Tensor(np.ones((5, 3)), requires_grad=True)
        (a - b).sum().backward()
        assert a.grad.shape == (4, 1, 3)
        assert b.grad.shape == (5, 3)
        np.testing.assert_array_equal(a.grad, np.full((4, 1, 3), 5.0))
        np.testing.assert_array_equal(b.grad, np.full((5, 3), -4.0))


class TestSharedParameterAccumulation:
    def test_parameter_used_twice_accumulates_both_paths(self):
        w = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        # y = sum(w * 3) + sum(w * 5) → dy/dw = 8 per element
        ((w * 3.0).sum() + (w * 5.0).sum()).backward()
        np.testing.assert_array_equal(w.grad, np.full(2, 8.0))

    def test_residual_identity_plus_inner_path(self):
        x = Tensor(np.array([[1.0, -2.0]]), requires_grad=True)
        block = nn.Residual(nn.Identity())
        # y = x + x → dy/dx = 2
        block(x).sum().backward()
        np.testing.assert_array_equal(x.grad, np.full((1, 2), 2.0))

    def test_weight_shared_between_two_layers(self):
        rng = np.random.default_rng(5)
        shared = nn.Linear(3, 3, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((4, 3)))
        # Apply the same layer twice: grad must be the sum of both uses.
        out = shared(shared(x))
        out.sum().backward()
        grad_both = shared.weight.grad.copy()

        # Reference: accumulate the two single-use gradients manually.
        shared.zero_grad()
        h = shared(x)
        h2 = Tensor(h.data)  # cut the graph between the two uses
        shared(h2).sum().backward()
        grad_second = shared.weight.grad.copy()
        shared.zero_grad()
        shared(x).backward(np.ones((4, 3)) @ shared.weight.data)
        grad_first = shared.weight.grad.copy()

        np.testing.assert_allclose(grad_both, grad_first + grad_second)

    def test_repeated_backward_accumulates_into_leaves(self):
        w = Tensor(np.ones(3), requires_grad=True)
        loss = (w * 2.0).sum()
        loss.backward()
        loss.backward()
        np.testing.assert_array_equal(w.grad, np.full(3, 4.0))


class TestNeedsGrad:
    def test_leaf_without_requires_grad(self):
        assert not needs_grad(Tensor([1.0]))

    def test_leaf_with_requires_grad(self):
        assert needs_grad(Tensor([1.0], requires_grad=True))

    def test_op_output_needs_grad(self):
        a = Tensor([1.0], requires_grad=True)
        assert needs_grad(a * 2.0)
