"""Tests for the functional NN interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestLinear:
    def test_matches_manual_affine(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2,)))
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data)

    def test_without_bias(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        w = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(F.linear(x, w).data, x.data @ w.data.T)


class TestActivations:
    def test_relu(self):
        np.testing.assert_allclose(F.relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_leaky_relu_values(self):
        out = F.leaky_relu(Tensor([-10.0, 10.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-1.0, 10.0])

    def test_leaky_relu_gradient(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        F.leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_tanh_sigmoid(self):
        np.testing.assert_allclose(F.tanh(Tensor([0.0])).data, [0.0])
        np.testing.assert_allclose(F.sigmoid(Tensor([0.0])).data, [0.5])

    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))
        assert np.all(out.data >= 0)


class TestMSELoss:
    def test_mean_reduction(self):
        pred = Tensor([[1.0, 2.0]])
        target = Tensor([[0.0, 0.0]])
        assert F.mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_sum_reduction(self):
        pred = Tensor([1.0, 2.0])
        target = Tensor([0.0, 0.0])
        assert F.mse_loss(pred, target, reduction="sum").item() == pytest.approx(5.0)

    def test_none_reduction_shape(self):
        pred = Tensor(np.zeros((3, 4)))
        target = Tensor(np.ones((3, 4)))
        assert F.mse_loss(pred, target, reduction="none").shape == (3, 4)

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            F.mse_loss(Tensor([1.0]), Tensor([1.0]), reduction="bogus")

    def test_accepts_numpy_target(self):
        assert F.mse_loss(Tensor([1.0]), np.array([1.0])).item() == 0.0

    def test_zero_for_identical(self, rng):
        data = rng.normal(size=(5, 7))
        assert F.mse_loss(Tensor(data), Tensor(data.copy())).item() == 0.0


class TestPerSampleMSE:
    def test_shape_keeps_batch_axis(self, rng):
        pred = Tensor(rng.normal(size=(6, 10)))
        target = Tensor(rng.normal(size=(6, 10)))
        assert F.per_sample_mse(pred, target).shape == (6,)

    def test_mean_of_per_sample_equals_batch_mse(self, rng):
        pred = Tensor(rng.normal(size=(6, 10)))
        target = Tensor(rng.normal(size=(6, 10)))
        per_sample = F.per_sample_mse(pred, target)
        assert per_sample.mean().item() == pytest.approx(F.mse_loss(pred, target).item())

    def test_values_match_manual(self):
        pred = Tensor([[1.0, 1.0], [0.0, 0.0]])
        target = Tensor([[0.0, 0.0], [0.0, 2.0]])
        np.testing.assert_allclose(F.per_sample_mse(pred, target).data, [1.0, 2.0])

    def test_1d_input_passthrough(self):
        out = F.per_sample_mse(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        np.testing.assert_allclose(out.data, [1.0, 4.0])

    def test_gradient_flows(self):
        pred = Tensor([[1.0, 2.0]], requires_grad=True)
        F.per_sample_mse(pred, Tensor([[0.0, 0.0]])).sum().backward()
        np.testing.assert_allclose(pred.grad, [[1.0, 2.0]])


class TestL1Loss:
    def test_mean(self):
        assert F.l1_loss(Tensor([1.0, -3.0]), Tensor([0.0, 0.0])).item() == pytest.approx(2.0)

    def test_sum(self):
        assert F.l1_loss(Tensor([1.0, -3.0]), Tensor([0.0, 0.0]), reduction="sum").item() == 4.0

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            F.l1_loss(Tensor([1.0]), Tensor([1.0]), reduction="x")


class TestDropout:
    def test_disabled_when_not_training(self, rng):
        x = Tensor(np.ones(100))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(np.ones(100))
        np.testing.assert_array_equal(F.dropout(x, 0.0, rng).data, x.data)

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones(20_000))
        out = F.dropout(x, 0.3, rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, rng)


class TestLinearFusionBitIdentity:
    """The fused linear node must reproduce the composed form bit-for-bit.

    ``F.linear`` records one autograd node; the reference below records the
    chain it replaced (transpose -> matmul -> add).  Forward values and every
    gradient must be *exactly* equal -- the training loop's bit-identical
    resume/parity contracts depend on it.
    """

    @staticmethod
    def _composed(x, w, b):
        out = x.matmul(w.transpose())
        if b is not None:
            out = out + b
        return out

    @pytest.mark.parametrize("batched", [True, False])
    @pytest.mark.parametrize("with_bias", [True, False])
    def test_forward_and_gradients_exact(self, rng, batched, with_bias):
        shape = (7, 5) if batched else (5,)
        x_data = rng.normal(size=shape)
        w_data = rng.normal(size=(3, 5))
        b_data = rng.normal(size=(3,)) if with_bias else None

        def build():
            x = Tensor(x_data.copy(), requires_grad=True)
            w = Tensor(w_data.copy(), requires_grad=True)
            b = Tensor(b_data.copy(), requires_grad=True) if with_bias else None
            return x, w, b

        x1, w1, b1 = build()
        fused = F.linear(x1, w1, b1)
        x2, w2, b2 = build()
        composed = self._composed(x2, w2, b2)
        np.testing.assert_array_equal(fused.data, composed.data)

        seed_grad = rng.normal(size=fused.shape)
        fused.backward(seed_grad.copy())
        composed.backward(seed_grad.copy())
        np.testing.assert_array_equal(x1.grad, x2.grad)
        np.testing.assert_array_equal(w1.grad, w2.grad)
        if with_bias:
            np.testing.assert_array_equal(b1.grad, b2.grad)

    def test_leaf_input_without_grad_is_skipped(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))  # leaf, requires_grad=False
        w = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        out = F.linear(x, w)
        out.backward(np.ones(out.shape))
        assert x.grad is None
        assert w.grad is not None

    def test_grad_flows_through_chained_inputs(self, rng):
        base = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        out = F.linear(base * 2.0, w)
        out.backward(np.ones(out.shape))
        assert base.grad is not None and base.grad.shape == (4, 5)
