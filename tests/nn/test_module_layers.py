"""Tests for Module/Parameter containers and the dense layer zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class TinyNet(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = nn.Linear(3, 5, rng=rng)
        self.fc2 = nn.Linear(5, 2, rng=rng)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestParameter:
    def test_requires_grad_by_default(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_named(self):
        assert Parameter(np.zeros(1), name="w").name == "w"


class TestModuleRegistration:
    def test_parameters_collected_recursively(self, rng):
        net = TinyNet(rng)
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self, rng):
        net = TinyNet(rng)
        assert net.num_parameters() == 3 * 5 + 5 + 5 * 2 + 2

    def test_named_modules(self, rng):
        net = TinyNet(rng)
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_zero_grad_clears_all(self, rng):
        net = TinyNet(rng)
        loss = net(Tensor(rng.normal(size=(2, 3)))).sum()
        loss.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_propagates(self, rng):
        net = TinyNet(rng)
        net.eval()
        assert not net.training and not net.fc1.training
        net.train()
        assert net.training and net.fc2.training

    def test_register_buffer_in_state_dict(self, rng):
        net = TinyNet(rng)
        net.register_buffer("running_mean", np.array([1.0, 2.0]))
        assert "running_mean" in net.state_dict()

    def test_state_dict_roundtrip(self, rng):
        net = TinyNet(rng)
        other = TinyNet(np.random.default_rng(999))
        other.load_state_dict(net.state_dict())
        for (name_a, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data), name_a

    def test_load_state_dict_missing_key(self, rng):
        net = TinyNet(rng)
        with pytest.raises(KeyError):
            net.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(4, 7, rng=rng)
        assert layer(Tensor(rng.normal(size=(3, 4)))).shape == (3, 7)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 2)

    def test_rejects_unknown_init(self, rng):
        with pytest.raises(ValueError):
            nn.Linear(2, 2, rng=rng, init="bogus")

    @pytest.mark.parametrize("scheme", ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "xavier_normal"])
    def test_init_schemes_produce_finite_weights(self, rng, scheme):
        layer = nn.Linear(16, 16, rng=rng, init=scheme)
        assert np.all(np.isfinite(layer.weight.data))
        assert layer.weight.data.std() > 0

    def test_deterministic_with_same_rng_seed(self):
        a = nn.Linear(3, 3, rng=np.random.default_rng(0))
        b = nn.Linear(3, 3, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestActivationsAndDropout:
    def test_relu_module(self):
        np.testing.assert_allclose(nn.ReLU()(Tensor([-1.0, 1.0])).data, [0.0, 1.0])

    def test_tanh_module(self):
        np.testing.assert_allclose(nn.Tanh()(Tensor([0.0])).data, [0.0])

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.2)(Tensor([-1.0]))
        np.testing.assert_allclose(out.data, [-0.2])

    def test_identity(self):
        x = Tensor([1.0, 2.0])
        assert nn.Identity()(x) is x

    def test_dropout_eval_mode_identity(self, rng):
        layer = nn.Dropout(0.9, rng=rng)
        layer.eval()
        x = Tensor(np.ones(50))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_dropout_training_zeroes_entries(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        out = layer(Tensor(np.ones(1000)))
        assert np.any(out.data == 0.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestSequential:
    def test_forward_composition(self, rng):
        model = nn.Sequential(nn.Linear(2, 4, rng=rng), nn.ReLU(), nn.Linear(4, 1, rng=rng))
        assert model(Tensor(rng.normal(size=(5, 2)))).shape == (5, 1)

    def test_len_getitem_iter(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)
        assert len(list(iter(model))) == 2

    def test_append(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng))
        model.append(nn.ReLU())
        assert len(model) == 2

    def test_parameters_gathered_in_order(self, rng):
        model = nn.Sequential(nn.Linear(2, 3, rng=rng), nn.ReLU(), nn.Linear(3, 1, rng=rng))
        assert len(model.parameters()) == 4

    def test_gradients_reach_first_layer(self, rng):
        model = nn.Sequential(nn.Linear(2, 3, rng=rng), nn.ReLU(), nn.Linear(3, 1, rng=rng))
        model(Tensor(rng.normal(size=(4, 2)))).sum().backward()
        assert model[0].weight.grad is not None
