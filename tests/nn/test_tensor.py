"""Tests for the autograd Tensor: forward values, gradients, broadcasting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_construction_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_item_and_size(self):
        t = Tensor([[2.5]])
        assert t.item() == 2.5
        assert t.size == 1
        assert t.ndim == 2

    def test_detach_severs_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_copy_is_independent(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0
        assert b.requires_grad

    def test_equality_compares_values(self):
        assert Tensor([1.0, 2.0]) == Tensor([1.0, 2.0])
        assert not (Tensor([1.0]) == Tensor([2.0]))

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + b).data, [3.0, 6.0])
        np.testing.assert_allclose((a - b).data, [1.0, 2.0])
        np.testing.assert_allclose((a * b).data, [2.0, 8.0])
        np.testing.assert_allclose((a / b).data, [2.0, 2.0])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1.0).data, [2.0, 3.0])
        np.testing.assert_allclose((1.0 + a).data, [2.0, 3.0])
        np.testing.assert_allclose((3.0 - a).data, [2.0, 1.0])
        np.testing.assert_allclose((2.0 * a).data, [2.0, 4.0])
        np.testing.assert_allclose((2.0 / a).data, [2.0, 1.0])

    def test_neg_pow(self):
        a = Tensor([1.0, -2.0])
        np.testing.assert_allclose((-a).data, [-1.0, 2.0])
        np.testing.assert_allclose((a ** 2).data, [1.0, 4.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_matrix(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose((a @ b).data, a.data)

    def test_matmul_matrix_vector(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        v = Tensor([1.0, 1.0])
        np.testing.assert_allclose((a @ v).data, [3.0, 7.0])


class TestGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [27.0])

    def test_matmul_backward(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        w = Tensor([[3.0], [4.0]], requires_grad=True)
        (a @ w).sum().backward()
        np.testing.assert_allclose(a.grad, [[3.0, 4.0]])
        np.testing.assert_allclose(w.grad, [[1.0], [2.0]])

    def test_chain_rule(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x + 3.0 * x + 1.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])  # 2x + 3 at x=2

    def test_gradient_accumulates_for_reused_tensor(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0) + (x * 3.0)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_repeated_backward_accumulates_into_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 2.0]))
        np.testing.assert_allclose(x.grad, [3.0, 6.0])

    def test_backward_rejects_wrong_gradient_shape(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 3).backward(np.array([1.0]))

    def test_constant_branch_receives_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])  # constant
        (x * c).sum().backward()
        assert c.grad is None


class TestBroadcastingGradients:
    def test_bias_broadcast(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])
        np.testing.assert_allclose(x.grad, np.ones((4, 3)))

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)

    def test_keepdim_axis_broadcast(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        w = Tensor(np.ones((1, 2)), requires_grad=True)
        (x * w).sum().backward()
        np.testing.assert_allclose(w.grad, [[3.0, 3.0]])


class TestUnaryOps:
    def test_relu_forward_backward(self):
        x = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        y = x.relu()
        np.testing.assert_allclose(y.data, [0.0, 0.0, 2.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0])
        np.testing.assert_allclose(x.exp().log().data, x.data)

    def test_exp_backward(self):
        x = Tensor([1.0], requires_grad=True)
        x.exp().sum().backward()
        np.testing.assert_allclose(x.grad, [np.e])

    def test_log_backward(self):
        x = Tensor([2.0], requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, [0.5])

    def test_tanh_backward(self):
        x = Tensor([0.3], requires_grad=True)
        x.tanh().sum().backward()
        np.testing.assert_allclose(x.grad, [1.0 - np.tanh(0.3) ** 2])

    def test_sigmoid_values(self):
        x = Tensor([0.0])
        np.testing.assert_allclose(x.sigmoid().data, [0.5])

    def test_abs_backward(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_sqrt_backward(self):
        x = Tensor([4.0], requires_grad=True)
        x.sqrt().sum().backward()
        np.testing.assert_allclose(x.grad, [0.25])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.reshape(3, 2)
        assert y.shape == (3, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.zeros(6)).reshape((2, 3)).shape == (2, 3)

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.T
        assert y.shape == (3, 2)
        y.sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_gradient_scatters(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        y = x.sum()
        assert y.item() == 6.0
        y.backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        y = x.sum(axis=0)
        np.testing.assert_allclose(y.data, [2.0, 2.0, 2.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_all(self):
        x = Tensor(np.array([1.0, 3.0]), requires_grad=True)
        y = x.mean()
        assert y.item() == 2.0
        y.backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_mean_axis_keepdims(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        y = x.mean(axis=1, keepdims=True)
        assert y.shape == (2, 1)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_mean_negative_axis(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        y = x.mean(axis=-1)
        assert y.shape == (3,)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 0.25))

    def test_max_all(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        y = x.max()
        assert y.item() == 5.0
        y.backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]))
        np.testing.assert_allclose(x.max(axis=1).data, [2.0, 4.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert not is_grad_enabled() or True  # context exited below

    def test_flag_restored_after_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestStackConcat:
    def test_stack_forward_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 2)
        s.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_concatenate_forward_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        c = concatenate([a, b], axis=0)
        np.testing.assert_allclose(c.data, [1.0, 2.0, 3.0])
        (c * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])


def test_as_tensor_passthrough():
    t = Tensor([1.0])
    assert as_tensor(t) is t
    assert isinstance(as_tensor([1.0, 2.0]), Tensor)
