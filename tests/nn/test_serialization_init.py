"""Tests for checkpoint serialization and weight initialisation statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import init as init_schemes
from repro.nn.serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from repro.nn.tensor import Tensor


class TestStateDictIO:
    def test_roundtrip(self, tmp_path, rng):
        model = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        path = save_state_dict(tmp_path / "weights", model.state_dict())
        assert path.exists() and path.suffix == ".npz"
        restored = load_state_dict(path)
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(restored[key], value)

    def test_load_without_suffix(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        save_state_dict(tmp_path / "w", model.state_dict())
        assert load_state_dict(tmp_path / "w")  # suffix added automatically


class TestCheckpoints:
    def test_checkpoint_roundtrip_restores_outputs(self, tmp_path, rng):
        model = nn.Sequential(nn.Linear(3, 5, rng=rng), nn.ReLU(), nn.Linear(5, 1, rng=rng))
        x = Tensor(rng.normal(size=(4, 3)))
        expected = model(x).data.copy()
        path = save_checkpoint(tmp_path / "model", model, metadata={"note": "test"})

        fresh = nn.Sequential(
            nn.Linear(3, 5, rng=np.random.default_rng(77)),
            nn.ReLU(),
            nn.Linear(5, 1, rng=np.random.default_rng(78)),
        )
        fresh, metadata = load_checkpoint(path, fresh)
        np.testing.assert_allclose(fresh(x).data, expected)
        assert metadata["note"] == "test"
        assert metadata["num_parameters"] == model.num_parameters()

    def test_missing_metadata_raises_naming_the_sidecar(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_state_dict(tmp_path / "bare", model.state_dict())
        with pytest.raises(FileNotFoundError, match=r"bare\.npz\.meta\.json"):
            load_checkpoint(path, model)

    def test_missing_metadata_tolerated_when_not_required(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_state_dict(tmp_path / "bare", model.state_dict())
        _, metadata = load_checkpoint(path, model, require_metadata=False)
        assert metadata == {}

    def test_corrupt_metadata_raises_naming_the_file(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = save_checkpoint(tmp_path / "model", model)
        sidecar = path.with_suffix(path.suffix + ".meta.json")
        sidecar.write_text("{ truncated")
        with pytest.raises(ValueError, match=r"model\.npz\.meta\.json"):
            load_checkpoint(path, model)

    def test_missing_archive_raises(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        with pytest.raises(FileNotFoundError, match=r"nothing\.npz"):
            load_checkpoint(tmp_path / "nothing", model)

    def test_atomic_save_leaves_no_tmp_files(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        save_state_dict(tmp_path / "w", model.state_dict())
        save_checkpoint(tmp_path / "model", model)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_compressed_save_roundtrips_and_is_smaller(self, tmp_path, rng):
        state = {"w": np.zeros((256, 256)), "b": rng.normal(size=64)}
        plain = save_state_dict(tmp_path / "plain", state)
        packed = save_state_dict(tmp_path / "packed", state, compressed=True)
        restored = load_state_dict(packed)
        for key, value in state.items():
            np.testing.assert_array_equal(restored[key], value)
        assert packed.stat().st_size < plain.stat().st_size


class TestInitialisers:
    def test_kaiming_uniform_bound(self, rng):
        w = init_schemes.kaiming_uniform((64, 256), rng)
        fan_in = 256
        gain = np.sqrt(2.0 / (1.0 + 5.0))
        bound = np.sqrt(3.0) * gain / np.sqrt(fan_in)
        assert np.all(np.abs(w) <= bound + 1e-12)

    def test_kaiming_normal_std(self, rng):
        w = init_schemes.kaiming_normal((2000, 500), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 500), rel=0.05)

    def test_xavier_uniform_bound(self, rng):
        w = init_schemes.xavier_uniform((100, 300), rng)
        bound = np.sqrt(6.0 / 400)
        assert np.all(np.abs(w) <= bound + 1e-12)

    def test_xavier_normal_std(self, rng):
        w = init_schemes.xavier_normal((1000, 1000), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 2000), rel=0.05)

    def test_zeros(self):
        assert np.all(init_schemes.zeros((3, 3)) == 0.0)

    def test_uniform_bias_bound(self, rng):
        b = init_schemes.uniform_bias(100, 25, rng)
        assert np.all(np.abs(b) <= 1.0 / 5.0 + 1e-12)

    def test_rejects_non_2d_shapes(self, rng):
        with pytest.raises(ValueError):
            init_schemes.kaiming_uniform((3,), rng)  # type: ignore[arg-type]
