"""Gradient verification: analytic autograd vs central finite differences.

These are the most important tests of the NN substrate: every op used by the
surrogate training loop is checked against numerical differentiation, both
with hand-picked inputs and property-based random inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.nn.grad_check import check_gradients, check_module_gradients, numerical_gradient
from repro.nn.tensor import Tensor

small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
    elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False),
)


class TestNumericalGradient:
    def test_quadratic(self):
        grad = numerical_gradient(lambda a: float((a**2).sum()), np.array([1.0, -2.0]))
        np.testing.assert_allclose(grad, [2.0, -4.0], rtol=1e-5)

    def test_matrix_input(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        grad = numerical_gradient(lambda a: float(a.sum()), x)
        np.testing.assert_allclose(grad, np.ones((2, 2)), atol=1e-6)


class TestCheckGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda t: (t * t).sum(),
            lambda t: (t * 3.0 + 1.0).mean(),
            lambda t: t.relu().sum(),
            lambda t: t.tanh().sum(),
            lambda t: t.sigmoid().mean(),
            lambda t: (t.exp() / (t.exp() + 1.0)).sum(),
            lambda t: (t ** 3).sum(),
            lambda t: t.abs().sum(),
            lambda t: (t - t.mean()).sum(),
            lambda t: ((t + 2.0) * (t - 1.0)).sum(),
        ],
        ids=[
            "square", "affine", "relu", "tanh", "sigmoid", "exp-ratio",
            "cube", "abs", "centered", "product",
        ],
    )
    def test_elementwise_ops(self, rng, fn):
        # Offset away from the ReLU/abs kinks so finite differences are valid.
        x = rng.normal(size=(3, 4)) + 0.37
        assert check_gradients(fn, x)

    def test_matmul(self, rng):
        w = rng.normal(size=(4, 2))
        assert check_gradients(lambda t: (t @ Tensor(w)).sum(), rng.normal(size=(3, 4)))

    def test_reductions_with_axis(self, rng):
        assert check_gradients(lambda t: t.sum(axis=0).sum(), rng.normal(size=(3, 4)))
        assert check_gradients(lambda t: t.mean(axis=1).sum(), rng.normal(size=(3, 4)))

    def test_getitem(self, rng):
        assert check_gradients(lambda t: t[1:3].sum(), rng.normal(size=(5,)))

    def test_requires_scalar_output(self, rng):
        with pytest.raises(ValueError):
            check_gradients(lambda t: t * 2, rng.normal(size=(3,)))

    @settings(max_examples=25, deadline=None)
    @given(small_arrays)
    def test_property_sum_of_squares(self, x):
        assert check_gradients(lambda t: (t * t).sum(), x)

    @settings(max_examples=25, deadline=None)
    @given(small_arrays)
    def test_property_tanh_mean(self, x):
        assert check_gradients(lambda t: t.tanh().mean(), x)


class TestModuleGradients:
    def test_linear_layer(self, rng):
        model = nn.Linear(3, 2, rng=rng)
        results = check_module_gradients(
            model,
            inputs=rng.normal(size=(4, 3)),
            targets=rng.normal(size=(4, 2)),
            loss_fn=nn.MSELoss(),
        )
        assert all(results.values()), results

    def test_two_layer_relu_mlp(self, rng):
        model = nn.Sequential(nn.Linear(3, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        results = check_module_gradients(
            model,
            inputs=rng.normal(size=(6, 3)),
            targets=rng.normal(size=(6, 2)),
            loss_fn=nn.MSELoss(),
        )
        assert all(results.values()), results

    def test_tanh_mlp_with_per_sample_loss(self, rng):
        model = nn.Sequential(nn.Linear(4, 6, rng=rng), nn.Tanh(), nn.Linear(6, 3, rng=rng))
        results = check_module_gradients(
            model,
            inputs=rng.normal(size=(5, 4)),
            targets=rng.normal(size=(5, 3)),
            loss_fn=lambda p, t: nn.functional.per_sample_mse(p, t).mean(),
        )
        assert all(results.values()), results

    def test_subset_of_parameters(self, rng):
        model = nn.Linear(2, 2, rng=rng)
        results = check_module_gradients(
            model,
            inputs=rng.normal(size=(3, 2)),
            targets=rng.normal(size=(3, 2)),
            loss_fn=nn.MSELoss(),
            parameters=["weight"],
        )
        assert set(results) == {"weight"}
