"""Optimizer ``state_dict``/``load_state_dict`` round-trips.

The session checkpointing contract needs optimizers to restore *exactly*:
after save → load, training one more step must produce bit-identical weights
to never having serialized at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import SGD, Adam, AdamW
from repro.nn.schedulers import StepLR
from repro.nn.tensor import Tensor


def _model(seed: int = 0) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))


def _train_steps(model: nn.Module, optimizer, n_steps: int, seed: int = 1) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(n_steps):
        x = Tensor(rng.normal(size=(8, 4)))
        y = Tensor(rng.normal(size=(8, 2)))
        model.zero_grad()
        loss = nn.functional.mse_loss(model(x), y)
        loss.backward()
        optimizer.step()


def _weights(model: nn.Module) -> dict:
    return {k: v.copy() for k, v in model.state_dict().items()}


@pytest.mark.parametrize(
    "factory",
    [
        lambda params: SGD(params, lr=1e-2),
        lambda params: SGD(params, lr=1e-2, momentum=0.9),
        lambda params: SGD(params, lr=1e-2, momentum=0.9, nesterov=True, weight_decay=1e-4),
        lambda params: Adam(params, lr=1e-3),
        lambda params: AdamW(params, lr=1e-3, weight_decay=1e-2),
    ],
    ids=["sgd", "sgd-momentum", "sgd-nesterov", "adam", "adamw"],
)
def test_save_load_train_one_step_equivalence(factory):
    """Continuous training == save → load into fresh optimizer → train."""
    continuous_model = _model()
    continuous_opt = factory(continuous_model.parameters())
    _train_steps(continuous_model, continuous_opt, 5, seed=1)
    _train_steps(continuous_model, continuous_opt, 1, seed=2)

    restored_model = _model()
    warmup_opt = factory(restored_model.parameters())
    _train_steps(restored_model, warmup_opt, 5, seed=1)
    state = warmup_opt.state_dict()
    fresh_opt = factory(restored_model.parameters())
    fresh_opt.load_state_dict(state)
    _train_steps(restored_model, fresh_opt, 1, seed=2)

    assert fresh_opt.step_count == continuous_opt.step_count == 6
    for key, value in _weights(continuous_model).items():
        np.testing.assert_array_equal(_weights(restored_model)[key], value)


def test_sgd_state_dict_contents():
    model = _model()
    optimizer = SGD(model.parameters(), lr=1e-2, momentum=0.9)
    _train_steps(model, optimizer, 3)
    state = optimizer.state_dict()
    assert state["step_count"] == 3
    assert len(state["velocity"]) == len(optimizer.parameters)
    assert all(isinstance(v, np.ndarray) for v in state["velocity"])
    # copies, not views: mutating the state must not touch the optimizer
    state["velocity"][0][...] = 0.0
    assert not np.array_equal(state["velocity"][0], optimizer._velocity[0])


def test_sgd_without_momentum_has_none_velocity():
    model = _model()
    optimizer = SGD(model.parameters(), lr=1e-2)
    _train_steps(model, optimizer, 2)
    state = optimizer.state_dict()
    assert state["velocity"] == [None] * len(optimizer.parameters)
    fresh = SGD(model.parameters(), lr=1e-2)
    fresh.load_state_dict(state)
    assert fresh.step_count == 2


def test_adam_moment_buffers_roundtrip():
    model = _model()
    optimizer = Adam(model.parameters(), lr=1e-3)
    _train_steps(model, optimizer, 4)
    state = optimizer.state_dict()
    assert state["step_count"] == 4
    fresh = Adam(model.parameters(), lr=1e-3)
    fresh.load_state_dict(state)
    for got_m, src_m, got_v, src_v in zip(fresh._m, optimizer._m, fresh._v, optimizer._v):
        np.testing.assert_array_equal(got_m, src_m)
        np.testing.assert_array_equal(got_v, src_v)
    # the state holds copies: training the source must not mutate it
    _train_steps(model, optimizer, 1)
    np.testing.assert_array_equal(fresh._m[0], state["m"][0])


def test_adam_length_mismatch_rejected():
    state = Adam(_model().parameters(), lr=1e-3).state_dict()
    small = nn.Linear(2, 2, rng=np.random.default_rng(0))
    with pytest.raises(ValueError, match="parameters"):
        Adam(small.parameters(), lr=1e-3).load_state_dict(state)


def test_sgd_length_mismatch_rejected():
    state = SGD(_model().parameters(), lr=1e-2, momentum=0.9).state_dict()
    small = nn.Linear(2, 2, rng=np.random.default_rng(0))
    with pytest.raises(ValueError, match="parameters"):
        SGD(small.parameters(), lr=1e-2, momentum=0.9).load_state_dict(state)


def test_reduce_on_plateau_state_roundtrip():
    from repro.nn.schedulers import ReduceLROnPlateau

    model = _model()
    optimizer = Adam(model.parameters(), lr=1e-3)
    scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
    # two plateaus: 0.5 improves, then 0.5/0.5/0.5 stall twice past patience
    for metric in (0.5, 0.5, 0.5, 0.5, 0.5, 0.5):
        scheduler.step_metric(metric)
    assert optimizer.lr < 1e-3
    state = scheduler.state_dict()

    fresh_opt = Adam(model.parameters(), lr=1e-3)
    fresh = ReduceLROnPlateau(fresh_opt, factor=0.5, patience=1)
    fresh.load_state_dict(state)
    assert fresh._best == scheduler._best
    assert fresh._bad_steps == scheduler._bad_steps
    assert fresh._current == scheduler._current
    # the restored plateau state governs the next step: no silent LR reset
    assert fresh.step_metric(0.5) == scheduler.step_metric(0.5)
    assert fresh_opt.lr == optimizer.lr


def test_lr_scheduler_state_roundtrip():
    model = _model()
    optimizer = Adam(model.parameters(), lr=1e-3)
    scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
    for _ in range(5):
        scheduler.step()
    state = scheduler.state_dict()

    fresh_opt = Adam(model.parameters(), lr=1e-3)
    fresh = StepLR(fresh_opt, step_size=2, gamma=0.5)
    fresh.load_state_dict(state)
    assert fresh.last_step == 5
    assert fresh_opt.lr == optimizer.lr
    assert fresh.step() == scheduler.step()
