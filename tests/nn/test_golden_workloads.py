"""End-to-end golden runs: the tape engine must not move a single bit.

``golden_workloads.json`` was captured with the hand-wired (pre-tape)
backward implementations — one tiny but complete on-line training run per
registered workload, recording the final losses and a SHA-256 digest of
every model weight.  The autograd-tape refactor must reproduce these values
*bit-identically*: any change to the recorded numbers means the derived
backward passes are not the exact arithmetic of the hand-wired kernels.

Regenerate (only when an intentional numeric change lands) with::

    PYTHONPATH=src python tests/nn/test_golden_workloads.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.breed.samplers import BreedConfig
from repro.melissa.run import OnlineTrainingConfig, run_online_training
from repro.solvers.heat2d import Heat2DConfig

GOLDEN_PATH = Path(__file__).parent / "golden_workloads.json"

WORKLOADS = (
    "heat2d",
    "heat1d",
    "analytic",
    "advection1d",
    "advection2d",
    "burgers",
    "fisher",
)


def golden_config(workload: str) -> OnlineTrainingConfig:
    """A seconds-scale but complete run of one workload (fixed forever)."""
    return OnlineTrainingConfig(
        method="breed",
        workload=workload,
        heat=Heat2DConfig(grid_size=6, n_timesteps=5),
        breed=BreedConfig(sigma=25.0, period=10, window=30, r_start=0.5, r_end=0.7, r_breakpoint=2),
        n_simulations=16,
        hidden_size=8,
        n_hidden_layers=2,
        batch_size=16,
        job_limit=4,
        timesteps_per_tick=1,
        train_iterations_per_tick=2,
        reservoir_capacity=120,
        reservoir_watermark=24,
        max_iterations=50,
        validation_period=20,
        n_validation_trajectories=3,
        seed=11,
    )


def run_golden(workload: str) -> dict:
    """Run one golden configuration and summarise it exactly."""
    result = run_online_training(golden_config(workload))
    digest = hashlib.sha256()
    state = result.model.state_dict()
    for key in sorted(state):
        digest.update(key.encode())
        digest.update(state[key].tobytes())
    return {
        "final_train_loss": result.final_train_loss,
        "final_validation_loss": result.final_validation_loss,
        "train_losses": list(result.history.train_losses),
        "weights_sha256": digest.hexdigest(),
    }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_golden_run_bit_identical(workload):
    golden = json.loads(GOLDEN_PATH.read_text())
    assert workload in golden, f"no golden record for {workload!r}; regenerate the file"
    observed = run_golden(workload)
    expected = golden[workload]
    # Losses are compared exactly: JSON round-trips IEEE-754 doubles via the
    # shortest-repr rule, so == here is bit-identity, not closeness.
    assert observed["final_train_loss"] == expected["final_train_loss"]
    assert observed["final_validation_loss"] == expected["final_validation_loss"]
    assert observed["train_losses"] == expected["train_losses"]
    assert observed["weights_sha256"] == expected["weights_sha256"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regenerate", action="store_true", help="rewrite golden_workloads.json")
    args = parser.parse_args()
    if not args.regenerate:
        parser.error("pass --regenerate to rewrite the golden file")
    records = {workload: run_golden(workload) for workload in WORKLOADS}
    GOLDEN_PATH.write_text(json.dumps(records, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(records)} workloads)")
