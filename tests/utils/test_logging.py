"""Tests for the structured event log."""

from __future__ import annotations

import logging

from repro.utils.logging import EventLog, LogRecord, format_record, get_logger


class TestEventLog:
    def test_emit_and_len(self):
        log = EventLog()
        log.emit("server", "validation", step=10, loss=0.5)
        assert len(log) == 1

    def test_record_payload_access(self):
        log = EventLog()
        record = log.emit("server", "validation", loss=0.25)
        assert record["loss"] == 0.25
        assert record.source == "server"

    def test_filter_by_source_and_event(self):
        log = EventLog()
        log.emit("launcher", "submitted", simulation_id=1)
        log.emit("launcher", "started", simulation_id=1)
        log.emit("server", "validation", loss=0.1)
        assert len(log.filter(source="launcher")) == 2
        assert len(log.filter(event="validation")) == 1
        assert len(log.filter(source="launcher", event="started")) == 1

    def test_last_returns_most_recent(self):
        log = EventLog()
        log.emit("server", "validation", loss=1.0)
        log.emit("server", "validation", loss=0.5)
        last = log.last("validation")
        assert last is not None and last["loss"] == 0.5

    def test_last_missing_event(self):
        assert EventLog().last("nothing") is None

    def test_clear(self):
        log = EventLog()
        log.emit("a", "b")
        log.clear()
        assert len(log) == 0

    def test_iteration(self):
        log = EventLog()
        log.emit("a", "x")
        log.emit("a", "y")
        assert [r.event for r in log] == ["x", "y"]


class TestFormatRecord:
    def test_basic_shape(self):
        record = LogRecord(source="server", event="validation", payload={"loss": 0.25}, step=40)
        assert format_record(record) == "[server] validation step=40 loss=0.25"

    def test_step_omitted_when_unset(self):
        record = LogRecord(source="launcher", event="submitted", payload={"simulation_id": 3})
        assert format_record(record) == "[launcher] submitted simulation_id=3"

    def test_floats_use_shortest_repr(self):
        record = LogRecord(source="s", event="e", payload={"ratio": 0.1})
        assert format_record(record) == "[s] e ratio=0.1"

    def test_payload_insertion_order_preserved(self):
        record = LogRecord(source="s", event="e", payload={"b": 1, "a": 2})
        assert format_record(record).endswith("b=1 a=2")

    def test_empty_payload(self):
        assert format_record(LogRecord(source="s", event="started")) == "[s] started"


class TestEcho:
    def test_echo_routes_formatted_record_through_stdlib_logging(self, caplog):
        log = EventLog(echo=True)
        with caplog.at_level(logging.INFO, logger="repro.events"):
            record = log.emit("server", "validation", step=20, loss=0.5)
        assert len(caplog.records) == 1
        assert caplog.records[0].getMessage() == format_record(record)

    def test_no_echo_by_default(self, caplog):
        log = EventLog()
        with caplog.at_level(logging.INFO, logger="repro.events"):
            log.emit("server", "validation", loss=0.5)
        assert caplog.records == []
        assert len(log) == 1  # still collected in memory


def test_get_logger_namespacing():
    assert get_logger("server").name == "repro.server"


def test_log_record_defaults():
    record = LogRecord(source="s", event="e")
    assert record.payload == {}
    assert record.step is None
