"""Tests for the structured event log."""

from __future__ import annotations

from repro.utils.logging import EventLog, LogRecord, get_logger


class TestEventLog:
    def test_emit_and_len(self):
        log = EventLog()
        log.emit("server", "validation", step=10, loss=0.5)
        assert len(log) == 1

    def test_record_payload_access(self):
        log = EventLog()
        record = log.emit("server", "validation", loss=0.25)
        assert record["loss"] == 0.25
        assert record.source == "server"

    def test_filter_by_source_and_event(self):
        log = EventLog()
        log.emit("launcher", "submitted", simulation_id=1)
        log.emit("launcher", "started", simulation_id=1)
        log.emit("server", "validation", loss=0.1)
        assert len(log.filter(source="launcher")) == 2
        assert len(log.filter(event="validation")) == 1
        assert len(log.filter(source="launcher", event="started")) == 1

    def test_last_returns_most_recent(self):
        log = EventLog()
        log.emit("server", "validation", loss=1.0)
        log.emit("server", "validation", loss=0.5)
        last = log.last("validation")
        assert last is not None and last["loss"] == 0.5

    def test_last_missing_event(self):
        assert EventLog().last("nothing") is None

    def test_clear(self):
        log = EventLog()
        log.emit("a", "b")
        log.clear()
        assert len(log) == 0

    def test_iteration(self):
        log = EventLog()
        log.emit("a", "x")
        log.emit("a", "y")
        assert [r.event for r in log] == ["x", "y"]


def test_get_logger_namespacing():
    assert get_logger("server").name == "repro.server"


def test_log_record_defaults():
    record = LogRecord(source="s", event="e")
    assert record.payload == {}
    assert record.step is None
