"""Tests for smoothing and streaming-statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.moving_average import (
    OnlineMean,
    OnlineMeanVar,
    exponential_moving_average,
    moving_average,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = [1.0, 3.0, 2.0, 5.0]
        np.testing.assert_allclose(moving_average(values, 1), values)

    def test_constant_series(self):
        np.testing.assert_allclose(moving_average([4.0] * 10, 3), [4.0] * 10)

    def test_known_values(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_growing_window_head(self):
        out = moving_average([2.0, 4.0, 6.0], 10)
        np.testing.assert_allclose(out, [2.0, 3.0, 4.0])

    def test_empty_series(self):
        assert moving_average([], 5).size == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros((2, 2)), 2)

    def test_preserves_length(self):
        assert moving_average(np.arange(17.0), 5).shape == (17,)

    @given(st.lists(finite_floats, min_size=1, max_size=50), st.integers(min_value=1, max_value=60))
    def test_output_bounded_by_input_range(self, values, window):
        out = moving_average(values, window)
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9


class TestExponentialMovingAverage:
    def test_alpha_one_is_identity(self):
        values = [1.0, 5.0, -2.0]
        np.testing.assert_allclose(exponential_moving_average(values, 1.0), values)

    def test_first_value_passthrough(self):
        assert exponential_moving_average([7.0, 0.0], 0.5)[0] == 7.0

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            exponential_moving_average([1.0], 0.0)
        with pytest.raises(ValueError):
            exponential_moving_average([1.0], 1.5)


class TestOnlineMean:
    def test_matches_numpy(self, rng):
        values = rng.normal(size=100)
        tracker = OnlineMean()
        tracker.update_many(values)
        assert tracker.mean == pytest.approx(values.mean())
        assert tracker.count == 100

    def test_float_conversion(self):
        tracker = OnlineMean()
        tracker.update(3.0)
        assert float(tracker) == 3.0


class TestOnlineMeanVar:
    def test_matches_numpy(self, rng):
        values = rng.normal(loc=2.0, scale=3.0, size=200)
        tracker = OnlineMeanVar()
        tracker.update_many(values)
        assert tracker.mean == pytest.approx(values.mean())
        assert tracker.variance == pytest.approx(values.var(), rel=1e-9)
        assert tracker.std == pytest.approx(values.std(), rel=1e-9)

    def test_single_value_zero_variance(self):
        tracker = OnlineMeanVar()
        tracker.update(5.0)
        assert tracker.variance == 0.0

    def test_as_tuple(self):
        tracker = OnlineMeanVar()
        tracker.update_many([1.0, 2.0, 3.0])
        mean, std, count = tracker.as_tuple()
        assert count == 3
        assert mean == pytest.approx(2.0)

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_variance_non_negative(self, values):
        tracker = OnlineMeanVar()
        tracker.update_many(values)
        assert tracker.variance >= 0.0
