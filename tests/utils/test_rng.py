"""Tests for the named RNG stream registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngStreams, derive_seed, default_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "reservoir") == derive_seed(42, "reservoir")

    def test_differs_by_name(self):
        assert derive_seed(42, "reservoir") != derive_seed(42, "breed")

    def test_differs_by_root_seed(self):
        assert derive_seed(0, "reservoir") != derive_seed(1, "reservoir")

    def test_non_negative(self):
        assert derive_seed(0, "x") >= 0

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
    def test_in_valid_generator_range(self, seed, name):
        derived = derive_seed(seed, name)
        assert 0 <= derived < 2**63
        # Must be usable as a Generator seed.
        np.random.default_rng(derived)


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(seed=1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_give_independent_streams(self):
        streams = RngStreams(seed=1)
        a = streams.get("a").random(10)
        b = streams.get("b").random(10)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        first = RngStreams(seed=7).get("x").random(5)
        second = RngStreams(seed=7).get("x").random(5)
        np.testing.assert_array_equal(first, second)

    def test_reset_single_stream(self):
        streams = RngStreams(seed=3)
        before = streams.get("x").random(4)
        streams.reset("x")
        after = streams.get("x").random(4)
        np.testing.assert_array_equal(before, after)

    def test_reset_all(self):
        streams = RngStreams(seed=3)
        before = streams.get("x").random(4)
        streams.get("y").random(2)
        streams.reset()
        np.testing.assert_array_equal(streams.get("x").random(4), before)

    def test_spawn_gives_different_namespace(self):
        parent = RngStreams(seed=3)
        child = parent.spawn("client-0")
        assert child.seed != parent.seed
        a = parent.get("x").random(5)
        b = child.get("x").random(5)
        assert not np.allclose(a, b)

    def test_spawn_deterministic(self):
        assert RngStreams(seed=3).spawn("c").seed == RngStreams(seed=3).spawn("c").seed

    def test_none_seed_records_entropy(self):
        streams = RngStreams(seed=None)
        assert isinstance(streams.seed, int)
        assert streams.seed >= 0

    def test_default_rng_helper(self):
        gen = default_rng(4)
        assert isinstance(gen, np.random.Generator)
