"""Tests for the timing utilities."""

from __future__ import annotations

import pytest

from repro.utils.timer import Timer, TimerRegistry, timed


class TestTimer:
    def test_span_accumulates(self):
        timer = Timer(name="t")
        with timer.span():
            pass
        with timer.span():
            pass
        assert timer.count == 2
        assert timer.total >= 0.0
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_zero_without_spans(self):
        assert Timer().mean == 0.0


class TestTimerRegistry:
    def test_get_creates_named_timer(self):
        registry = TimerRegistry()
        assert registry.get("train") is registry.get("train")

    def test_span_records(self):
        registry = TimerRegistry()
        with registry.span("phase"):
            pass
        assert registry.get("phase").count == 1

    def test_summary_lines(self):
        registry = TimerRegistry()
        with registry.span("b"):
            pass
        with registry.span("a"):
            pass
        lines = registry.summary()
        assert len(lines) == 2
        assert lines[0].startswith("a")  # sorted by name


def test_timed_context_manager():
    with timed() as t:
        pass
    assert t.count == 1
    assert t.total >= 0.0
