"""Tests for the timing utilities."""

from __future__ import annotations

import pytest

from repro.utils.timer import Timer, TimerRegistry, timed


class TestTimer:
    def test_span_accumulates(self):
        timer = Timer(name="t")
        with timer.span():
            pass
        with timer.span():
            pass
        assert timer.count == 2
        assert timer.total >= 0.0
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_zero_without_spans(self):
        assert Timer().mean == 0.0

    def test_stop_returns_span_elapsed_not_total(self):
        timer = Timer()
        with timer.span():
            pass
        timer.start()
        elapsed = timer.stop()
        assert 0.0 <= elapsed <= timer.total

    def test_span_accumulates_on_exception(self):
        timer = Timer(name="t")
        with pytest.raises(ValueError):
            with timer.span():
                raise ValueError("body failed")
        # The span still closed: count advanced and the timer is restartable.
        assert timer.count == 1
        timer.start()
        timer.stop()
        assert timer.count == 2

    def test_error_messages_carry_timer_name(self):
        timer = Timer(name="receive")
        timer.start()
        with pytest.raises(RuntimeError, match="'receive'"):
            timer.start()


class TestTimerRegistry:
    def test_get_creates_named_timer(self):
        registry = TimerRegistry()
        assert registry.get("train") is registry.get("train")

    def test_span_records(self):
        registry = TimerRegistry()
        with registry.span("phase"):
            pass
        assert registry.get("phase").count == 1

    def test_summary_lines(self):
        registry = TimerRegistry()
        with registry.span("b"):
            pass
        with registry.span("a"):
            pass
        lines = registry.summary()
        assert len(lines) == 2
        assert lines[0].startswith("a")  # sorted by name

    def test_empty_registry_summary(self):
        assert TimerRegistry().summary() == []

    def test_summary_reports_count_and_mean(self):
        registry = TimerRegistry()
        for _ in range(3):
            with registry.span("phase"):
                pass
        (line,) = registry.summary()
        assert "count=     3" in line
        assert "total=" in line and "mean=" in line

    def test_nested_spans_of_distinct_timers(self):
        registry = TimerRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        assert registry.get("outer").count == 1
        assert registry.get("inner").count == 1
        assert registry.get("outer").total >= registry.get("inner").total


def test_timed_context_manager():
    with timed() as t:
        pass
    assert t.count == 1
    assert t.total >= 0.0


def test_timed_records_on_exception():
    with pytest.raises(RuntimeError):
        with timed() as t:
            raise RuntimeError("boom")
    assert t.count == 1
    assert t.total >= 0.0
