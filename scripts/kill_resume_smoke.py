#!/usr/bin/env python
"""Kill-and-resume smoke test: SIGKILL a checkpointing run, resume, compare.

Driver mode (no ``--mode``) orchestrates the whole scenario in one command::

    PYTHONPATH=src python scripts/kill_resume_smoke.py

1. run the configuration uninterrupted, from scratch, and record how many
   training iterations it actually performs — the kill point is derived from
   that count (half-way through), so the victim is *guaranteed* to be killed
   strictly mid-run regardless of how the scale presets evolve (a fixed kill
   iteration used to flake when the run terminated before reaching it),
2. spawn a *victim* subprocess running the same tiny fig3a-style training run
   (H=16, L=1, Breed) with ``checkpoint_every`` snapshots, which SIGKILLs
   itself at the derived iteration — no cleanup, no atexit, exactly like an
   OOM kill or node failure,
3. check the victim died from SIGKILL and left complete snapshots behind,
4. resume the run from its latest snapshot and drive it to completion,
5. assert the resumed and uninterrupted runs' final metrics and full loss
   series are **bit-identical**.

Exit code 0 means the fault-tolerance contract holds.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import subprocess
import sys
from pathlib import Path


#: snapshot interval (training batches) of the victim/resume configurations
CHECKPOINT_EVERY = 20


def build_config(checkpoint_dir: str | None = None, checkpoint_every: int = 0):
    from repro.experiments.base import base_config

    config = base_config("smoke", method="breed", seed=0)
    return dataclasses.replace(
        config,
        hidden_size=16,
        n_hidden_layers=1,
        n_simulations=24,
        max_iterations=120,
        n_validation_trajectories=4,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )


def metrics_of(result) -> dict:
    return {
        "final_train_loss": result.final_train_loss,
        "final_validation_loss": result.final_validation_loss,
        "iterations": result.server_summary["iterations"],
        "n_ticks": result.n_ticks,
        "transport_bytes": result.transport_bytes,
        "steering_events": len(result.steering_records),
        "parameter_sources": result.parameter_sources,
        "executed_parameters": result.executed_parameters.tolist(),
        "train_losses": list(result.history.train_losses),
        "train_iterations": list(result.history.train_iterations),
        "validation_losses": list(result.history.validation_losses),
        "validation_iterations": list(result.history.validation_iterations),
    }


def run_victim(workdir: Path, kill_at_iteration: int) -> None:
    """Run with checkpointing and SIGKILL ourselves at the given iteration."""
    from repro.checkpoint import resume_or_start

    config = build_config(str(workdir / "snapshots"), checkpoint_every=CHECKPOINT_EVERY)
    session = resume_or_start(config)

    def kill(s) -> None:
        if s.server.iteration >= kill_at_iteration:
            os.kill(os.getpid(), signal.SIGKILL)

    session.on_tick.append(kill)
    resumed_at = session.server.iteration
    session.run()
    raise SystemExit(
        "victim survived to completion: "
        f"started at iteration {resumed_at}, ended at {session.server.iteration} "
        f"after {session.n_ticks} ticks with kill_at_iteration={kill_at_iteration}"
    )


def run_resume(workdir: Path, out: Path) -> None:
    from repro.checkpoint import resume_or_start

    config = build_config(str(workdir / "snapshots"), checkpoint_every=CHECKPOINT_EVERY)
    session = resume_or_start(config)
    if session.server.iteration == 0:
        raise SystemExit("no snapshot found to resume from")
    result = session.run()
    out.write_text(json.dumps(metrics_of(result)))


def run_reference(out: Path) -> None:
    from repro.api.session import TrainingSession

    result = TrainingSession(build_config()).run()
    out.write_text(json.dumps(metrics_of(result)))


def derive_kill_iteration(reference: dict) -> int:
    """Mid-run kill point derived from the reference's *actual* iteration count.

    A fixed kill iteration flakes: if the run terminates (budget exhausted or
    data-starved) before ever reaching it, the victim survives to completion
    and the SIGKILL check fails.  Half the measured iteration count is
    strictly mid-run by construction.  The kill must also land *after* the
    first periodic snapshot: the kill hook runs before the checkpoint-policy
    hook on the tick that crosses both thresholds, so a kill point at or just
    past ``CHECKPOINT_EVERY`` could SIGKILL the victim with no snapshot on
    disk.  The floor of ``CHECKPOINT_EVERY + 5`` clears the snapshot tick
    (iterations advance a couple per tick); a reference run too short to
    accommodate it fails loudly instead of flaking.
    """
    iterations = int(reference["iterations"])
    floor = CHECKPOINT_EVERY + 5
    if iterations <= floor:
        raise SystemExit(
            f"reference run performed only {iterations} iteration(s); killing mid-run "
            f"after the first snapshot needs more than {floor} — lengthen the run"
        )
    return max(floor, iterations // 2)


def drive(workdir: Path) -> int:
    workdir.mkdir(parents=True, exist_ok=True)
    print("[1/4] running the uninterrupted reference (also sizes the kill point)")
    run_reference(workdir / "reference.json")
    reference = json.loads((workdir / "reference.json").read_text())
    kill_at = derive_kill_iteration(reference)

    print(f"[2/4] spawning victim (SIGKILL at iteration {kill_at} "
          f"of {int(reference['iterations'])}) in {workdir}")
    victim = subprocess.run(
        [sys.executable, __file__, "--mode", "victim", "--workdir", str(workdir),
         "--kill-at-iteration", str(kill_at)],
        env=dict(os.environ),
    )
    if victim.returncode != -signal.SIGKILL and victim.returncode != 128 + signal.SIGKILL:
        print(f"FAIL: victim exited with {victim.returncode}, expected SIGKILL")
        return 1
    snapshots = sorted((workdir / "snapshots").glob("step-*"))
    print(f"[3/4] victim SIGKILLed; snapshots left behind: {[p.name for p in snapshots]}")
    if not snapshots:
        print("FAIL: the victim left no snapshots")
        return 1

    print("[4/4] resuming from the latest snapshot")
    run_resume(workdir, workdir / "resumed.json")

    resumed = json.loads((workdir / "resumed.json").read_text())
    reference = json.loads((workdir / "reference.json").read_text())
    mismatches = [key for key in reference if resumed.get(key) != reference[key]]
    if mismatches:
        print(f"FAIL: resumed run differs from the reference in {mismatches}")
        return 1
    print(
        "OK: kill-and-resume is bit-identical "
        f"(final validation MSE {reference['final_validation_loss']:.6f}, "
        f"{reference['iterations']:.0f} iterations)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=["victim", "resume", "reference"], default=None)
    parser.add_argument("--workdir", default="results/kill_resume_smoke")
    parser.add_argument("--kill-at-iteration", type=int, default=60)
    args = parser.parse_args()
    workdir = Path(args.workdir)
    if args.mode == "victim":
        run_victim(workdir, args.kill_at_iteration)
        return 1  # unreachable unless the kill never fired
    if args.mode == "resume":
        run_resume(workdir, workdir / "resumed.json")
        return 0
    if args.mode == "reference":
        run_reference(workdir / "reference.json")
        return 0
    return drive(workdir)


if __name__ == "__main__":
    raise SystemExit(main())
