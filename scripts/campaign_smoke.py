#!/usr/bin/env python
"""Campaign kill-and-resume smoke test: SIGKILL ``repro campaign`` mid-node,
resume over the same root, and check the outcome against an uninterrupted
reference.

One command orchestrates the whole scenario::

    PYTHONPATH=src python scripts/campaign_smoke.py [--backend serial|shm]

1. run the campaign (a diamond DAG whose ``right`` node shares a
   configuration with ``left``) uninterrupted in-process — the reference,
2. launch ``python -m repro.cli campaign`` as a subprocess with a
   deterministic fault armed through the ``repro.workflow.faults`` env
   protocol: SIGKILL the driver when it reaches the chosen node/run — no
   cleanup, no atexit, exactly like an OOM kill mid-campaign,
3. relaunch with ``--resume`` over the same root and wait for a clean exit,
4. assert the final ``result.json`` is **bit-identical** to the reference
   (wall-clock timing metrics excluded), that the manifest ledger shows
   every executed run digest exactly once across BOTH invocations (completed
   runs were spliced, never re-executed), and that the shared configuration
   was satisfied from the artifact cache (one ``cached`` run event),
5. run ``repro doctor`` between kill and resume: the abandoned campaign must
   be flagged with the exact resume command.

``--backend serial`` kills the driver *mid-run* (the ``run`` injection point
fires inside ``execute_spec`` in the driver process); ``--backend shm`` kills
the driver at a *run boundary* (the ``record`` point — under shm the ``run``
point would fire in a pool worker instead of the orchestrator).

Exit code 0 means the campaign resume contract holds.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")

CAMPAIGN_NAME = "campaign-smoke"

#: node whose run the fault lands on, per backend (mid-DAG in both cases)
FAULT = {"serial": ("run", "left", 1), "shm": ("record", "left", 1)}


def campaign_payload(backend: str) -> dict:
    import dataclasses

    from repro.experiments.base import base_config

    config = dataclasses.replace(
        base_config("smoke", method="breed", seed=5),
        n_simulations=4,
        max_iterations=20,
        n_validation_trajectories=2,
        hidden_size=8,
        n_hidden_layers=1,
    )
    return {
        "name": CAMPAIGN_NAME,
        "config": config.to_dict(),
        "backend": backend,
        "max_workers": 2,
        "nodes": [
            {"name": "src", "configurations": [{"sigma": 0.1}]},
            {"name": "left", "depends_on": ["src"],
             "configurations": [{"sigma": 0.3}, {"sigma": 0.5}]},
            {"name": "right", "depends_on": ["src"],
             "configurations": [{"sigma": 0.5}]},  # shared with left -> cache
            {"name": "join", "depends_on": ["left", "right"],
             "select": {"type": "top_k", "node": "left",
                        "metric": "final_validation_loss", "k": 1,
                        "overrides": {"max_iterations": 24}}},
        ],
    }


def comparable_nodes(payload: dict) -> dict:
    from repro.workflow.executor import TIMING_METRICS

    out = {}
    for node, runs in payload["nodes"].items():
        stripped = []
        for run in runs:
            run = dict(run)
            run.pop("telemetry", None)
            run["metrics"] = {
                k: v for k, v in run["metrics"].items() if k not in TIMING_METRICS
            }
            stripped.append(run)
        out[node] = stripped
    return out


def launch(args: list, env_extra: dict) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else SRC
    env.update(env_extra)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", *[str(a) for a in args]],
        env=env,
        start_new_session=True,
    )


def reap(process: subprocess.Popen) -> None:
    """Kill the invocation's whole session and reclaim leaked shm segments."""
    from repro.workflow.shm import orphaned_segments

    try:
        os.killpg(process.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = orphaned_segments()
        if not leaked:
            return
        for name in leaked:
            try:
                (Path("/dev/shm") / name).unlink()
            except (FileNotFoundError, PermissionError):
                pass
        time.sleep(0.05)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=("serial", "shm"), default="serial")
    parser.add_argument("--workdir", default="results/campaign_smoke", type=Path)
    args = parser.parse_args()

    sys.path.insert(0, SRC)
    from repro.campaign import CampaignManifest, CampaignRunner, CampaignSpec
    from repro.doctor import diagnose
    from repro.workflow.faults import MODE_ENV, TOKEN_ENV

    workdir: Path = args.workdir
    workdir.mkdir(parents=True, exist_ok=True)
    payload = campaign_payload(args.backend)
    spec_file = workdir / "campaign.json"
    spec_file.write_text(json.dumps(payload))

    print(f"[1/5] uninterrupted in-process reference ({args.backend})")
    reference = CampaignRunner(
        CampaignSpec.from_dict(payload), workdir / "reference"
    ).run()
    assert reference.ok, f"reference failed: {reference.states}"
    reference_nodes = comparable_nodes(reference.to_dict())

    point, node, run_index = FAULT[args.backend]
    token = f"{point}:{node}:{run_index}"
    root = workdir / "victim"
    print(f"[2/5] victim campaign, SIGKILL armed at {token}")
    victim = launch([spec_file, "--root", root], {TOKEN_ENV: token, MODE_ENV: "sigkill"})
    try:
        rc = victim.wait(timeout=600)
    finally:
        reap(victim)
    assert rc == -signal.SIGKILL, f"victim exited {rc}, expected SIGKILL"
    assert not (root / "result.json").exists(), "victim should die before finishing"

    print("[3/5] repro doctor flags the abandoned campaign")
    report = diagnose([workdir])
    finding = next(c for c in report["campaigns"] if c["root"] == str(root))
    assert finding["status"] == "abandoned", finding
    assert any("--resume" in issue for issue in report["issues"]), report["issues"]

    print("[4/5] resume over the same root")
    resumed = launch([spec_file, "--root", root, "--resume"], {})
    try:
        rc = resumed.wait(timeout=600)
    finally:
        reap(resumed)
    assert rc == 0, f"resume exited {rc}"

    print("[5/5] bit-identity + execute-exactly-once ledger checks")
    final = json.loads((root / "result.json").read_text())
    assert comparable_nodes(final) == reference_nodes, "resumed result differs from reference"

    manifest = CampaignManifest(root / "manifest.jsonl")
    counts = manifest.executed_run_counts()
    assert counts and all(c == 1 for c in counts.values()), counts
    assert len(counts) == 4, f"expected 4 executed digests, got {sorted(counts)}"
    cached = [
        e for e in manifest.load() if e["event"] == "run_finished" and e.get("cached")
    ]
    assert len(cached) == 1, f"expected exactly one cache-spliced run, got {len(cached)}"

    print(f"campaign kill-and-resume smoke passed ({args.backend}): "
          f"{len(counts)} digests executed once, 1 cache hit, bit-identical resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
