#!/usr/bin/env python
"""Service kill-and-resume smoke test: SIGKILL a live study server, restart,
and check the finished jobs are bit-identical to an in-process reference.

One command orchestrates the whole scenario::

    PYTHONPATH=src python scripts/service_smoke.py

1. run the study serially in-process (``StudyRunner``) — the reference,
2. start ``python -m repro.cli serve`` on an ephemeral port (``--port 0``;
   the bound address is discovered from the ``server.json`` the service
   writes at startup),
3. submit the study twice over HTTP — the second submission must dedupe
   onto the first job (same fingerprint, ``deduplicated: true``),
4. watch the job's chunked JSONL stream and ``kill -9`` the server the
   moment the first ``run_finished`` event arrives — no cleanup, no atexit,
   exactly like an OOM kill or node failure mid-study,
5. restart the server over the same root: startup recovery re-queues the
   job it finds dangling in ``running``, and the worker resumes it from the
   per-job ``runs.jsonl`` checkpoint (completed runs are spliced, never
   re-executed),
6. wait for the job to finish, then assert its results are **bit-identical**
   to the reference (timing metrics excluded) and that ``runs.jsonl`` holds
   exactly one record per run,
7. stop the server with SIGTERM and check it exits 0 leaving a clean
   ``shutdown.marker``.

Exit code 0 means the service's restart-safe resume contract holds.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

#: mid-run session-snapshot interval (training batches) used by the service
CHECKPOINT_EVERY = 10

STUDY_NAME = "service-smoke"
N_RUNS = 3


def build_config():
    from repro.experiments.base import base_config

    config = base_config("smoke", method="breed", seed=0)
    return dataclasses.replace(
        config,
        hidden_size=16,
        n_hidden_layers=1,
        n_simulations=24,
        max_iterations=120,
        n_validation_trajectories=4,
    )


def configurations():
    return [{"hidden_size": 12 + 4 * i} for i in range(N_RUNS)]


def comparable_runs(runs: list) -> list:
    """Run payloads with measurement-only fields stripped.

    Wall-clock timing metrics and telemetry counter deltas are observation,
    not results: the service enables ``repro.telemetry`` while the in-process
    reference runs dark, and the bit-identity contract covers everything
    else.
    """
    from repro.workflow.executor import TIMING_METRICS

    stripped = []
    for run in sorted(runs, key=lambda r: r["name"]):
        run = dict(run)
        run["metrics"] = {
            k: v for k, v in run["metrics"].items() if k not in TIMING_METRICS
        }
        run.pop("telemetry", None)
        stripped.append(run)
    return stripped


def scrape_metrics(url: str) -> str:
    """Fetch and validate the Prometheus exposition from a live server."""
    from repro.service import ServiceClient

    text = ServiceClient(url, timeout=30.0).metrics()
    if not text.strip():
        raise SystemExit("FAIL: /v1/metrics served an empty exposition")
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        if not name or not value:
            raise SystemExit(f"FAIL: malformed exposition line {line!r}")
        float(value)  # every sample value must parse as a number
    if "repro_service_uptime_seconds" not in text:
        raise SystemExit("FAIL: exposition lacks the service gauges")
    return text


def run_reference() -> list:
    from repro.workflow.study import StudyRunner

    runner = StudyRunner(base_config=build_config(), study_name=STUDY_NAME)
    results = runner.run_all(configurations())
    return [run.to_dict() for run in results.runs]


# ------------------------------------------------------------------ server ops


def start_server(root: Path) -> subprocess.Popen:
    """Spawn ``repro.cli serve`` on an ephemeral port over ``root``."""
    (root / "server.json").unlink(missing_ok=True)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--root", str(root), "--port", "0", "--workers", "1",
            "--checkpoint-every", str(CHECKPOINT_EVERY),
        ],
        env=dict(os.environ),
    )


def discover_url(root: Path, proc: subprocess.Popen, timeout: float = 30.0) -> str:
    """The server's base URL, from the ``server.json`` it writes at startup."""
    from repro.service import ServiceClient

    deadline = time.monotonic() + timeout
    marker = root / "server.json"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server died during startup (exit {proc.returncode})")
        if marker.exists():
            try:
                url = json.loads(marker.read_text())["url"]
                ServiceClient(url, timeout=5.0).health()
                return url
            except Exception:  # noqa: BLE001 - half-written marker or booting server
                pass
        time.sleep(0.05)
    raise SystemExit(f"server did not come up within {timeout:.0f}s")


def kill_on_first_run(url: str, job_id: str, proc: subprocess.Popen) -> None:
    """SIGKILL the server the moment the job's first run completes."""
    from repro.service import ServiceClient

    client = ServiceClient(url, timeout=120.0)
    try:
        for event in client.stream(job_id):
            if event["event"] in ("done", "failed", "cancelled"):
                raise SystemExit(
                    f"job reached {event['event']!r} before the kill could land — "
                    "lengthen the runs so the study outlives its first run_finished"
                )
            if event["event"] == "run_finished":
                proc.send_signal(signal.SIGKILL)
                break
    except (ConnectionError, OSError):
        pass  # the dying server may tear the stream first; the kill was sent
    if proc.wait(timeout=30.0) != -signal.SIGKILL:
        raise SystemExit(f"server exited {proc.returncode}, expected SIGKILL")


# ---------------------------------------------------------------------- driver


def drive(workdir: Path, backend: str = "serial") -> int:
    from repro.service import ServiceClient

    workdir.mkdir(parents=True, exist_ok=True)
    root = workdir / "service"
    config = build_config().to_dict()

    print(f"[1/5] running the in-process serial reference ({N_RUNS} runs)")
    reference = run_reference()

    print(f"[2/5] starting the server and submitting the study (plus a duplicate, "
          f"backend={backend})")
    proc = start_server(root)
    url = discover_url(root, proc)
    client = ServiceClient(url, timeout=120.0)
    job = client.submit(STUDY_NAME, config, configurations(), backend=backend)
    duplicate = client.submit(STUDY_NAME, config, configurations(), backend=backend)
    if not duplicate["deduplicated"] or duplicate["id"] != job["id"]:
        print("FAIL: identical submission did not dedupe onto the first job")
        return 1
    print(f"      job {job['id']} queued; duplicate deduped onto it")

    print("[3/5] SIGKILLing the server at the first run_finished event")
    kill_on_first_run(url, job["id"], proc)
    state_on_disk = json.loads(
        (root / "jobs" / job["id"] / "job.json").read_text()
    )["state"]
    runs_lines = (root / "jobs" / job["id"] / "runs.jsonl").read_text().splitlines()
    print(f"      server dead; job is {state_on_disk!r} with "
          f"{len(runs_lines)} run(s) checkpointed")
    if state_on_disk != "running":
        print(f"FAIL: expected the job dangling in 'running', found {state_on_disk!r}")
        return 1

    print("[4/5] restarting the server; recovery must resume the job")
    proc = start_server(root)
    url = discover_url(root, proc)
    client = ServiceClient(url, timeout=120.0)
    # Mid-job observability check: the resumed job is live right now, so the
    # scrape must serve a well-formed exposition including study counters.
    exposition = scrape_metrics(url)
    (workdir / "metrics_midjob.txt").write_text(exposition)
    print(f"      /v1/metrics exposition well-formed mid-job "
          f"({len(exposition.splitlines())} lines; saved to metrics_midjob.txt)")
    final = client.wait(job["id"], timeout=600.0)
    if final["state"] != "done":
        print(f"FAIL: job ended {final['state']!r}: {final['error']}")
        return 1
    served = client.result(job["id"])["runs"]
    job_metrics = client.job(job["id"])["metrics"]
    if not job_metrics.get("repro_session_ticks_total"):
        print("FAIL: finished job carries no merged per-run telemetry counters")
        return 1

    lines = (root / "jobs" / job["id"] / "runs.jsonl").read_text().splitlines()
    if len(lines) != N_RUNS:
        print(f"FAIL: runs.jsonl holds {len(lines)} records, expected {N_RUNS} "
              "(a completed run was lost or re-executed)")
        return 1
    if comparable_runs(served) != comparable_runs(reference):
        print("FAIL: served results differ from the serial reference")
        return 1
    print(f"      job finished after restart; all {N_RUNS} runs bit-identical "
          "to the reference")

    print("[5/5] stopping the server with SIGTERM")
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=60.0)
    if code != 0:
        print(f"FAIL: graceful shutdown exited {code}, expected 0")
        return 1
    if not (root / "shutdown.marker").exists():
        print("FAIL: no shutdown.marker after a graceful stop")
        return 1
    print("OK: submit/dedupe, kill -9, restart-resume, and graceful shutdown all hold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="results/service_smoke")
    parser.add_argument("--backend", default="serial",
                        help="executor backend the submitted job runs through "
                             "(serial/process/shm); the in-process reference "
                             "always runs serially, so any backend must match "
                             "it bit-identically")
    args = parser.parse_args()
    return drive(Path(args.workdir), backend=args.backend)


if __name__ == "__main__":
    raise SystemExit(main())
