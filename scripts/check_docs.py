#!/usr/bin/env python
"""Documentation checks: intra-repo markdown links + doctested examples.

Two failure modes documentation rots through:

1. relative links pointing at files that moved or never existed,
2. fenced code examples that drifted from the real API.

This script guards both: it scans every tracked ``*.md`` file for relative
links and verifies the targets exist, and runs ``doctest`` over the files in
:data:`DOCTESTED` (docs whose fenced examples are written as ``>>>``
sessions).  Exit status is non-zero on any failure, so it doubles as a CI
step and is also exercised by ``tests/test_docs.py``::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown files whose fenced ``>>>`` examples must execute as written
DOCTESTED = (
    "docs/WORKLOADS.md",
    "docs/BENCHMARKS.md",
    "docs/CAMPAIGNS.md",
    "docs/AUTOGRAD.md",
)

#: scaffolding files quoting material from *other* repositories verbatim —
#: their links describe those repos, not this one
LINK_CHECK_EXCLUDED = ("PAPERS.md", "SNIPPETS.md", "PAPER.md", "ISSUE.md")

#: inline markdown links ``[text](target)`` (images share the syntax)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: link schemes that are not filesystem paths
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def markdown_files() -> List[Path]:
    """Every markdown file in the repository (skipping caches/venvs)."""
    paths = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        relative = path.relative_to(REPO_ROOT)
        if any(part.startswith(".") or part == "__pycache__" for part in relative.parts[:-1]):
            continue
        if str(relative) in LINK_CHECK_EXCLUDED:
            continue
        paths.append(path)
    return paths


def check_links(paths: List[Path]) -> List[Tuple[Path, str]]:
    """Relative links whose target file/directory does not exist."""
    broken: List[Tuple[Path, str]] = []
    for path in paths:
        for target in _LINK.findall(path.read_text()):
            if target.startswith(_EXTERNAL):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((path, target))
    return broken


def run_doctests() -> List[Tuple[Path, str]]:
    """Doctest failures of the :data:`DOCTESTED` documentation files."""
    failures: List[Tuple[Path, str]] = []
    for name in DOCTESTED:
        path = REPO_ROOT / name
        if not path.exists():
            failures.append((path, "file is missing"))
            continue
        result = doctest.testfile(str(path), module_relative=False, verbose=False)
        if result.failed:
            failures.append((path, f"{result.failed}/{result.attempted} examples failed"))
    return failures


def main() -> int:
    paths = markdown_files()
    print(f"checking {len(paths)} markdown files for broken relative links")
    broken = check_links(paths)
    for path, target in broken:
        print(f"BROKEN LINK  {path.relative_to(REPO_ROOT)}: ({target})", file=sys.stderr)

    print(f"doctesting {len(DOCTESTED)} documentation files")
    failed = run_doctests()
    for path, message in failed:
        print(f"DOCTEST FAIL {path.relative_to(REPO_ROOT)}: {message}", file=sys.stderr)

    if broken or failed:
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
