#!/usr/bin/env python
"""Quickstart: train a multi-parametric heat-PDE surrogate on-line with Breed.

This is the smallest end-to-end use of the public API:

1. configure a scaled-down 2D heat problem and a small MLP surrogate,
2. run a :class:`repro.api.TrainingSession` with Breed steering (solver
   clients stream data into the reservoir while the NN trains and steers
   future simulations), watching progress through a validation hook,
3. compare the surrogate's prediction against the solver on an unseen
   parameter vector.

The legacy one-call entry point ``repro.run_online_training(config)`` remains
equivalent to building the session and calling ``session.run()``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import OnlineTrainingConfig, TrainingSession
from repro.breed.samplers import BreedConfig
from repro.solvers.heat2d import Heat2DConfig


def main() -> None:
    config = OnlineTrainingConfig(
        method="breed",
        heat=Heat2DConfig(grid_size=10, n_timesteps=15),
        breed=BreedConfig(sigma=25.0, period=20, window=60, r_start=0.5, r_end=0.7, r_breakpoint=3),
        n_simulations=48,
        hidden_size=32,
        n_hidden_layers=2,
        batch_size=32,
        job_limit=6,
        timesteps_per_tick=1,
        train_iterations_per_tick=2,
        reservoir_capacity=400,
        reservoir_watermark=50,
        max_iterations=250,
        validation_period=50,
        n_validation_trajectories=8,
        seed=42,
    )

    print("Running on-line training (Breed steering)...")
    session = TrainingSession(config)
    session.add_hook(
        "validation",
        lambda s, iteration, loss: print(f"  [iter {iteration:4d}] validation MSE {loss:.5f}"),
    )
    result = session.run()

    print(f"  workload              : {result.workload}")
    print(f"  method                : {result.method}")
    print(f"  NN iterations         : {result.history.train_iterations[-1]}")
    print(f"  final train MSE       : {result.final_train_loss:.5f}")
    print(f"  final validation MSE  : {result.final_validation_loss:.5f}")
    print(f"  steering events       : {len(result.steering_records)}")
    print(f"  parameter overwrites  : {result.launcher_summary['overwrites']}")
    print(f"  steering wall-clock   : {result.steering_seconds * 1e3:.2f} ms")

    # --- use the trained surrogate --------------------------------------
    solver = session.solver  # the workload's solver, already built
    unseen_parameters = np.array([450.0, 120.0, 480.0, 130.0, 470.0])
    timestep = config.heat.n_timesteps  # final time step

    reference = solver.solve(unseen_parameters).final_field
    prediction = result.model.predict_field(unseen_parameters, timestep)
    rmse = float(np.sqrt(np.mean((prediction - reference) ** 2)))
    print("\nSurrogate vs solver on an unseen parameter vector")
    print(f"  parameters            : {unseen_parameters.tolist()}")
    print(f"  field RMSE (Kelvin)   : {rmse:.2f}")
    print(f"  solver field range    : [{reference.min():.1f}, {reference.max():.1f}] K")
    print(f"  surrogate field range : [{prediction.min():.1f}, {prediction.max():.1f}] K")


if __name__ == "__main__":
    main()
