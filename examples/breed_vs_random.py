#!/usr/bin/env python
"""Breed vs Random steering: the paper's headline comparison (Figures 3a & 4b).

Runs two on-line training experiments with an identical budget — one steered
uniformly at random (the baseline), one steered by Breed — and reports:

* final train/validation losses and the overfit gap of each run,
* the distribution shift of the chosen input parameters (Breed concentrates
  on parameter vectors with dissimilar temperatures, which produce more
  dynamic, harder-to-learn trajectories).

Run with::

    python examples/breed_vs_random.py [--scale smoke|small]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.analysis.curves import curve_from_history
from repro.analysis.deviation import compare_runs
from repro.analysis.report import render_histograms, render_loss_curves
from repro.experiments.base import base_config, shared_study_inputs
from repro.melissa.run import run_online_training


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"], help="experiment scale")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--hidden-size", type=int, default=16, help="hidden width H of the surrogate MLP"
    )
    parser.add_argument("--layers", type=int, default=3, help="number of hidden layers L")
    args = parser.parse_args()

    breed_config = replace(
        base_config(args.scale, method="breed", seed=args.seed),
        hidden_size=args.hidden_size,
        n_hidden_layers=args.layers,
    )
    random_config = replace(breed_config, method="random")

    # Shared solver + fixed validation set, exactly like the paper's studies.
    _, solver, validation = shared_study_inputs(breed_config)

    print(f"Running Random baseline (H={args.hidden_size}, L={args.layers})...")
    random_run = run_online_training(random_config, solver=solver, validation_set=validation)
    print(f"Running Breed           (H={args.hidden_size}, L={args.layers})...")
    breed_run = run_online_training(breed_config, solver=solver, validation_set=validation)

    curves = {
        "Random": curve_from_history(random_run.history, "Random"),
        "Breed": curve_from_history(breed_run.history, "Breed"),
    }
    print("\n--- Loss curves (Figure 3a cell) " + "-" * 30)
    print(render_loss_curves(curves))

    print("--- Input-parameter deviation histograms (Figure 4b) " + "-" * 12)
    histograms = compare_runs(
        {"Random": random_run.executed_parameters, "Breed": breed_run.executed_parameters}
    )
    print(render_histograms(histograms))

    gap_random = curves["Random"].overfit_gap
    gap_breed = curves["Breed"].overfit_gap
    print("Summary")
    print(f"  Random overfit gap (val - train): {gap_random:+.5f}")
    print(f"  Breed  overfit gap (val - train): {gap_breed:+.5f}")
    print(f"  Breed deviation-mean shift vs Random: "
          f"{histograms['Breed'].mean - histograms['Random'].mean:+.2f} K")
    print(f"  Breed steering events: {len(breed_run.steering_records)}, "
          f"overwritten simulations: {breed_run.launcher_summary['overwrites']}")


if __name__ == "__main__":
    main()
