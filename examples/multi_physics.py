#!/usr/bin/env python
"""Tour of the multi-physics workload family.

The on-line training loop (reservoir, breed steering, checkpointing) never
sees the PDE — only flattened fields and a parameter box.  This example runs
the same training budget against the three new physics families and shows
what each solver is doing underneath:

1. validate each transport solver against its closed-form reference
   (advected Gaussian for advection–diffusion, the Cole–Hopf travelling wave
   for viscous Burgers, invariant-region/mass checks for Fisher–KPP),
2. train one surrogate per workload with identical budgets by switching the
   ``workload`` registry key,
3. run the Breed-vs-Random cross-workload study through the study engine.

Run with::

    PYTHONPATH=src python examples/multi_physics.py [--seed 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import OnlineTrainingConfig, TrainingSession
from repro.experiments.cross_workload import run_cross_workload
from repro.solvers.advection import AdvectionDiffusion1DConfig, AdvectionDiffusion1DSolver
from repro.solvers.burgers import Burgers1DConfig, Burgers1DSolver
from repro.solvers.reaction_diffusion import FisherKPPConfig, FisherKPPSolver

NEW_WORKLOADS = ("advection1d", "advection2d", "burgers", "fisher")


def validate_solvers() -> None:
    """Discretisation error of each scheme against its exact reference."""
    rel = lambda a, b: float(np.linalg.norm(a - b) / np.linalg.norm(b))  # noqa: E731

    adv = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=64, n_timesteps=100))
    params = [1.5, 0.3, 0.05]
    *_, last = adv.steps(params)
    t_final = adv.config.dt * adv.config.n_timesteps
    print(f"advection1d: pulse travels {adv.config.velocity * t_final:.2f} of the domain, "
          f"rel. L2 error vs advected Gaussian {rel(last, adv.exact(params, t_final)):.4f}")

    bur = Burgers1DSolver(Burgers1DConfig(n_points=64, n_timesteps=100))
    params = [1.0, 0.2, 0.3]
    *_, last = bur.steps(params)
    t_final = bur.config.dt * bur.config.n_timesteps
    print(f"burgers:     front speed {(1.0 + 0.2) / 2:.2f}, "
          f"rel. L2 error vs Cole-Hopf wave {rel(last, bur.exact(params, t_final)):.4f}")

    fis = FisherKPPSolver(FisherKPPConfig(n_points=64, n_timesteps=200))
    fields = np.stack(list(fis.steps([6.0, 0.8, 0.5])))
    print(f"fisher:      fields stay in the invariant region "
          f"[{fields.min():.3f}, {fields.max():.3f}], "
          f"population grows {fields[-1].sum() / fields[0].sum():.1f}x")


def train_each_workload(seed: int) -> None:
    """One identical budget, four different physics backends."""
    for name in NEW_WORKLOADS:
        config = OnlineTrainingConfig(
            workload=name,
            n_simulations=24,
            hidden_size=16,
            batch_size=32,
            job_limit=6,
            timesteps_per_tick=2,
            train_iterations_per_tick=2,
            reservoir_capacity=400,
            reservoir_watermark=40,
            max_iterations=120,
            validation_period=40,
            n_validation_trajectories=6,
            seed=seed,
        )
        session = TrainingSession(config)
        result = session.run()
        print(f"  {name:12s} | output_dim={session.workload.output_dim:4d} "
              f"| params={session.workload.bounds.dim} "
              f"({', '.join(session.workload.bounds.names)}) "
              f"| final validation MSE {result.final_validation_loss:.5f}")


def cross_study(seed: int) -> None:
    """Breed vs Random across the new workloads through the study engine."""
    result = run_cross_workload(scale="smoke", workloads=list(NEW_WORKLOADS), seed=seed)
    print("\nBreed vs Random (smoke scale):")
    for workload, method, _, val, gap in result.summary_rows():
        print(f"  {workload:12s} {method:6s} validation MSE {val:.5f} (gap {gap:+.5f})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("== solver validation against closed forms ==")
    validate_solvers()
    print("\n== one training budget, four physics ==")
    train_each_workload(args.seed)
    cross_study(args.seed)


if __name__ == "__main__":
    main()
