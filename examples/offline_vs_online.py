#!/usr/bin/env python
"""Off-line vs on-line training of the same surrogate.

The paper's motivation (Section 1): the standard *off-line* pipeline
materialises the full solver dataset on disk before training, which couples
dataset size to storage and I/O budgets; Melissa's *on-line* pipeline streams
solver output straight into training.  This example runs both pipelines with
the same simulation budget and reports

* the storage footprint the off-line dataset would require,
* the bytes that crossed the (simulated) transport in the on-line run,
* final validation losses of both surrogates.

Run with::

    python examples/offline_vs_online.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.api import OnlineTrainingConfig
from repro.api.workloads import Heat2DWorkload
from repro.breed.samplers import BreedConfig
from repro.melissa.run import run_online_training
from repro.nn.tensor import Tensor
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.sampling.uniform import uniform_in_bounds
from repro.solvers.heat2d import Heat2DConfig, Heat2DImplicitSolver
from repro.surrogate.dataset import BatchIterator, generate_offline_dataset
from repro.surrogate.model import DirectSurrogate, SurrogateConfig
from repro.surrogate.normalization import SurrogateScalers
from repro.surrogate.validation import build_validation_set, validation_loss


def train_offline(
    solver: Heat2DImplicitSolver,
    scalers: SurrogateScalers,
    n_simulations: int,
    n_epochs: int,
    batch_size: int,
    validation,
    seed: int,
) -> tuple[DirectSurrogate, float, int]:
    """Classic epoch-based training on a pre-generated dataset."""
    rng = np.random.default_rng(seed)
    parameters = uniform_in_bounds(n_simulations, HEAT2D_BOUNDS, rng)
    dataset = generate_offline_dataset(solver, parameters, scalers)

    model = DirectSurrogate(
        SurrogateConfig(
            input_dim=6,
            output_dim=solver.field_size,
            hidden_size=32,
            n_hidden_layers=2,
        ),
        scalers,
        rng=rng,
    )
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    loss_fn = nn.MSELoss()
    iterator = BatchIterator(dataset, batch_size=batch_size, rng=rng)
    for _ in range(n_epochs):
        for inputs, targets, _ in iterator:
            model.zero_grad()
            loss = loss_fn(model(Tensor(inputs)), Tensor(targets))
            loss.backward()
            optimizer.step()
    return model, validation_loss(model, validation), dataset.nbytes


def main() -> None:
    heat = Heat2DConfig(grid_size=10, n_timesteps=15)
    n_simulations = 48
    workload = Heat2DWorkload(heat=heat)
    solver = workload.build_solver()
    scalers = workload.build_scalers()
    validation = build_validation_set(solver, workload.bounds, scalers, n_trajectories=8)

    # --- off-line pipeline -------------------------------------------------
    print("Off-line pipeline: generate dataset -> store -> epoch-based training")
    offline_model, offline_val, dataset_bytes = train_offline(
        solver,
        scalers,
        n_simulations=n_simulations,
        n_epochs=4,
        batch_size=32,
        validation=validation,
        seed=0,
    )
    print(f"  dataset storage footprint : {dataset_bytes / 1e6:.2f} MB")
    print(f"  final validation MSE      : {offline_val:.5f}")

    # --- on-line pipeline ---------------------------------------------------
    print("\nOn-line pipeline: stream solver output straight into training (Melissa)")
    config = OnlineTrainingConfig(
        method="breed",
        heat=heat,
        breed=BreedConfig(sigma=25.0, period=20, window=60),
        n_simulations=n_simulations,
        hidden_size=32,
        n_hidden_layers=2,
        batch_size=32,
        job_limit=6,
        timesteps_per_tick=1,
        train_iterations_per_tick=2,
        reservoir_capacity=400,
        reservoir_watermark=50,
        max_iterations=250,
        validation_period=50,
        n_validation_trajectories=8,
        seed=0,
    )
    online = run_online_training(config, solver=solver, validation_set=validation)
    print(f"  streamed data volume      : {online.transport_bytes / 1e6:.2f} MB (never stored)")
    print(f"  reservoir peak size       : {int(online.reservoir_summary['size'])} samples "
          f"(capacity {int(online.reservoir_summary['capacity'])})")
    print(f"  mean sample reuse         : {online.reservoir_summary['mean_reuse']:.1f}x")
    print(f"  final validation MSE      : {online.final_validation_loss:.5f}")

    print("\nComparison")
    print(f"  off-line needs the full dataset on disk ({dataset_bytes / 1e6:.2f} MB); "
          f"on-line bounds memory to the reservoir "
          f"({int(online.reservoir_summary['capacity'])} samples).")
    print(f"  validation MSE — offline: {offline_val:.5f}   online: {online.final_validation_loss:.5f}")


if __name__ == "__main__":
    main()
