#!/usr/bin/env python
"""Multi-scenario studies with the pluggable Workload API.

The steering contribution of the paper is workload-agnostic: Breed only sees
per-sample losses and a parameter box, never the PDE.  This example exercises
that decoupling end to end:

1. run the *same* on-line training configuration against every registered
   workload (the heat family plus the multi-physics family — advection,
   Burgers, Fisher–KPP) just by switching the ``workload`` registry key,
2. watch progress through ``TrainingSession`` hooks instead of patching the
   training loop,
3. drive a small Breed-vs-Random study on the cheap ``heat1d`` workload with
   the :class:`~repro.workflow.study.StudyRunner` orchestrator,
4. register a custom workload from user code — no framework changes needed.

Run with::

    python examples/multi_workload.py [--scale smoke]
"""

from __future__ import annotations

import argparse

from repro.api import (
    OnlineTrainingConfig,
    TrainingSession,
    register_workload,
    workload_names,
)
from repro.api.workloads import Heat1DWorkload
from repro.breed.samplers import BreedConfig
from repro.sampling.bounds import ParameterBounds
from repro.solvers.heat1d import Heat1DConfig
from repro.workflow.study import StudyRunner


def run_every_workload(seed: int) -> None:
    """One identical budget, three different physics backends."""
    print(f"registered workloads: {workload_names()}")
    for name in workload_names():
        config = OnlineTrainingConfig(
            workload=name,
            breed=BreedConfig(sigma=25.0, period=25, window=60),
            n_simulations=24,
            hidden_size=16,
            batch_size=32,
            job_limit=6,
            timesteps_per_tick=2,
            train_iterations_per_tick=2,
            reservoir_capacity=400,
            reservoir_watermark=40,
            max_iterations=120,
            validation_period=40,
            n_validation_trajectories=6,
            seed=seed,
            # shared resolution knobs: 12x12 grid for heat2d, 12 points for 1-D
            workload_options={},
        )
        session = TrainingSession(config)
        session.add_hook(
            "steering",
            lambda s, record: print(
                f"    steering @ iter {record.iteration}: {record.n_applied} simulations rewritten"
            ),
        )
        result = session.run()
        print(
            f"  {name:8s} | output_dim={session.workload.output_dim:4d} "
            f"| params_dim={session.workload.bounds.dim} "
            f"| final validation MSE {result.final_validation_loss:.5f} "
            f"| ticks {result.n_ticks}"
        )


def heat1d_study(seed: int) -> None:
    """Breed vs Random on the 1-D workload through the study orchestrator."""
    base = OnlineTrainingConfig(
        workload="heat1d",
        breed=BreedConfig(sigma=25.0, period=30, window=60),
        workload_options={"n_points": 32},
        n_simulations=32,
        hidden_size=16,
        batch_size=32,
        job_limit=6,
        timesteps_per_tick=2,
        train_iterations_per_tick=2,
        reservoir_capacity=400,
        reservoir_watermark=40,
        max_iterations=150,
        validation_period=50,
        n_validation_trajectories=8,
        seed=seed,
    )
    runner = StudyRunner(base_config=base, study_name="heat1d")
    results = runner.run_all(
        [
            {"_name": "breed", "method": "breed"},
            {"_name": "random", "method": "random"},
        ],
        name_key="_name",
    )
    print("\nBreed vs Random on heat1d (shared solver + validation set):")
    for run in results.runs:
        print(
            f"  {run.name:15s} validation MSE {run.metric('final_validation_loss'):.5f} "
            f"(overfit gap {run.metric('overfit_gap'):+.5f})"
        )


def custom_workload_demo(seed: int) -> None:
    """Plug in a user-defined scenario without touching the framework."""

    @register_workload("heat1d-hires", overwrite=True)
    def _hires(config: OnlineTrainingConfig) -> Heat1DWorkload:
        return Heat1DWorkload(
            heat=Heat1DConfig(n_points=96, n_timesteps=config.heat.n_timesteps),
            parameter_bounds=ParameterBounds(
                low=(200.0,) * 3, high=(400.0,) * 3, names=("T0", "T_left", "T_right")
            ),
        )

    config = OnlineTrainingConfig(
        workload="heat1d-hires",
        n_simulations=16,
        batch_size=32,
        job_limit=4,
        reservoir_capacity=300,
        reservoir_watermark=40,
        max_iterations=80,
        validation_period=40,
        n_validation_trajectories=4,
        seed=seed,
    )
    result = TrainingSession(config).run()
    print(
        f"\ncustom workload 'heat1d-hires': output_dim={result.model.config.output_dim}, "
        f"final validation MSE {result.final_validation_loss:.5f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    run_every_workload(args.seed)
    heat1d_study(args.seed)
    custom_workload_demo(args.seed)


if __name__ == "__main__":
    main()
