#!/usr/bin/env python
"""Reproduce a slice of the paper's hyper-parameter study (Figure 3b) with the
workflow orchestrator.

The paper drives its studies with Snakemake; the equivalent here is
:class:`repro.workflow.StudyRunner` plus :func:`one_factor_at_a_time`: a base
configuration (Table 1, study 2/3 values) and a set of one-factor-at-a-time
variations, each executed as an independent Melissa run sharing the same fixed
validation set.

The runs are independent, so ``--jobs N`` fans them out over a process pool
(bit-identical results, any completion order), and ``--checkpoint FILE``
streams finished runs to a JSONL file that a re-invocation resumes from —
kill the study mid-way, run the same command again, and only the remaining
configurations execute.

Run with::

    python examples/hyperparameter_study.py [--factor sigma|period|window|r_start]
    python examples/hyperparameter_study.py --jobs 4 --checkpoint study.jsonl
"""

from __future__ import annotations

import argparse

from repro.experiments.base import base_config
from repro.workflow.grid import one_factor_at_a_time
from repro.workflow.study import StudyRunner

#: value grids per factor (reduced versions of the paper's Section 4.1 lists)
FACTOR_VALUES = {
    "sigma": [1.0, 10.0, 25.0],
    "period": [10, 30, 60],
    "window": [20, 60, 120],
    "r_start": [0.1, 0.5, 1.0],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--factor", default="sigma", choices=sorted(FACTOR_VALUES))
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count; >1 runs the study on the process executor backend")
    parser.add_argument("--checkpoint", default=None, metavar="JSONL",
                        help="stream finished runs to this JSONL file and resume from it")
    args = parser.parse_args()

    template = base_config(args.scale, method="breed", seed=args.seed)
    base_values = {
        "hidden_size": 16,
        "n_hidden_layers": 1,
        "sigma": template.breed.sigma,
        "period": template.breed.period,
        "window": template.breed.window,
        "r_start": template.breed.r_start,
    }
    configurations = one_factor_at_a_time(base_values, {args.factor: FACTOR_VALUES[args.factor]})

    backend = "process" if args.jobs > 1 else "serial"
    runner = StudyRunner(
        base_config=template,
        study_name=f"fig3b-{args.factor}",
        backend=backend,
        max_workers=args.jobs,
    )
    print(f"Running {len(configurations)} Breed runs varying {args.factor!r} "
          f"(scale={args.scale}, backend={backend})...")
    results = runner.run_all(configurations, resume=args.checkpoint)

    print()
    print(results.table(
        columns=["_factor", "_value"],
        metric_columns=["final_train_loss", "final_validation_loss", "overfit_gap",
                        "steering_events", "elapsed_seconds"],
    ))
    best = results.best("final_validation_loss")
    if best is not None:
        print(f"\nbest {args.factor}: {best.config['_value']} "
              f"(validation MSE {best.metric('final_validation_loss'):.5f})")


if __name__ == "__main__":
    main()
