#!/usr/bin/env python
"""Use the 2D heat solver substrate directly (Appendix B.1 of the paper).

Demonstrates the solver layer on its own: run a trajectory, check the discrete
maximum principle, compare the implicit and explicit integrators, and verify
long-time convergence to the analytic steady state.

Run with::

    python examples/solver_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.solvers.analytic import steady_state_2d
from repro.solvers.heat2d import Heat2DConfig, Heat2DExplicitSolver, Heat2DImplicitSolver


def main() -> None:
    config = Heat2DConfig(grid_size=24, n_timesteps=60, dt=0.01, alpha=1.0)
    implicit = Heat2DImplicitSolver(config)
    explicit = Heat2DExplicitSolver(config)

    parameters = [300.0, 100.0, 500.0, 200.0, 400.0]  # T0, T1..T4 in Kelvin
    print(f"Solving 2D heat equation on a {config.grid_size}x{config.grid_size} grid, "
          f"{config.n_timesteps} steps of {config.dt}s  (T0..T4 = {parameters})")

    trajectory = implicit.solve(parameters)
    fields = trajectory.as_array()
    print(f"  trajectory shape          : {fields.shape}  (timesteps x grid points)")
    print(f"  temperature range         : [{fields.min():.1f}, {fields.max():.1f}] K")
    print(f"  maximum principle honored : "
          f"{bool(fields.min() >= min(parameters) - 1e-8 and fields.max() <= max(parameters) + 1e-8)}")

    # Implicit vs explicit integrator agreement at the final time step.
    explicit_final = explicit.solve(parameters).final_field
    diff = np.abs(trajectory.final_field - explicit_final)
    print(f"  implicit vs explicit      : max |Δ| = {diff.max():.3f} K "
          f"(explicit sub-cycles {explicit.substeps}x per macro step)")

    # Long-time behaviour vs the analytic steady state.
    long_config = Heat2DConfig(grid_size=24, n_timesteps=400, dt=0.01)
    long_solver = Heat2DImplicitSolver(long_config)
    final = long_solver.solve(parameters).final_field.reshape(long_config.grid_size, -1)
    analytic = steady_state_2d(long_config.grid.coordinates, *parameters[1:])
    interior = (slice(1, -1), slice(1, -1))
    err = np.abs(final[interior] - analytic[interior]).max()
    print(f"  steady-state error        : max |Δ| = {err:.3f} K after "
          f"{long_config.n_timesteps} steps (analytic separation-of-variables reference)")


if __name__ == "__main__":
    main()
