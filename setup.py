"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517/660 editable installs (which build an editable wheel) are unavailable.
Keeping a ``setup.py`` lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``) perform a legacy
editable install.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
